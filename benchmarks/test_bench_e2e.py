"""[E14] End-to-end QPS scaling across shard worker processes.

The multi-core data plane's performance claim: hosting each shard's
engine in its own worker process (over shared, zero-copy mmap segments)
lets aggregate retrieval throughput scale with cores, where the
threaded cluster serialises every shard's per-record Python work behind
one GIL.  The sweep serves the same broadcast-heavy program at each
worker count and records the open-loop percentile table into
``BENCH_e2e.json``.

Honesty note: the scaling assertion is gated on the *host actually
having* >= 4 cores — on a 1-core CI box every configuration timeshares
one CPU and the recorded numbers show exactly that (``host_cores`` in
the payload says which situation produced them).
"""

import json
import os
import pathlib

from repro.terms import read_term
from repro.workloads import format_cores_table, run_cores_sweep
from tables import record_table

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_e2e.json"


def build_program(facts: int) -> str:
    # One flat predicate, round-robin sharded, so an open first-argument
    # query broadcasts: every worker scans its slice in parallel.
    return " ".join(f"edge(n{i}, n{(i * 7) % facts})." for i in range(facts))


def test_bench_multicore_scaling(quick):
    facts = 400 if quick else 3_000
    qps = 120.0 if quick else 300.0
    duration_s = 0.5 if quick else 2.0
    core_counts = (1, 2) if quick else (1, 2, 4)

    program = build_program(facts)
    goals = [
        read_term("edge(X, n0)"),
        read_term("edge(X, n7)"),
        read_term("edge(X, n14)"),
    ]

    threaded_rows = run_cores_sweep(
        program, goals, cores=(1,), qps=qps, duration_s=duration_s,
        workers="threads",
    )
    process_rows = run_cores_sweep(
        program, goals, cores=core_counts, qps=qps, duration_s=duration_s,
        workers="processes",
    )

    host_cores = os.cpu_count() or 1
    baseline = threaded_rows[0][1]

    def row_payload(backend, n, result):
        return {
            "backend": backend,
            "workers": n,
            "offered": result.offered,
            "ok": result.ok,
            "busy": result.busy,
            "errors": result.errors,
            "achieved_qps": round(result.achieved_qps, 1),
            "p50_ms": round(result.latency_s(0.50) * 1e3, 4),
            "p90_ms": round(result.latency_s(0.90) * 1e3, 4),
            "p99_ms": round(result.latency_s(0.99) * 1e3, 4),
        }

    payload = {
        "host_cores": host_cores,
        "facts": facts,
        "offered_qps": qps,
        "duration_s": duration_s,
        "quick": quick,
        "rows": [
            row_payload("threads", threaded_rows[0][0], baseline),
            *(row_payload("processes", n, r) for n, r in process_rows),
        ],
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_table(
        "E14",
        "Aggregate QPS x shard worker processes (host wall clock)",
        ("backend", "workers", "qps", "p50 ms", "p99 ms"),
        [
            (
                row["backend"],
                row["workers"],
                row["achieved_qps"],
                row["p50_ms"],
                row["p99_ms"],
            )
            for row in payload["rows"]
        ],
        notes=(
            f"host has {host_cores} core(s); open-loop {qps:g} qps for "
            f"{duration_s:g}s per point; table:\n"
            + format_cores_table(process_rows)
            + f"\nresults in {RESULT_PATH.name}"
        ),
    )

    # Every configuration must actually serve the load, process or not.
    for _, result in (*threaded_rows, *process_rows):
        assert result.errors == 0
        assert result.ok > 0

    # The scaling claim only means something on a multi-core host; a
    # 1-core container timeshares every worker over the same CPU.
    if host_cores >= 4 and not quick:
        by_workers = dict(process_rows)
        assert (
            by_workers[4].achieved_qps >= 3.0 * baseline.achieved_qps
        ), (
            f"4 workers achieved {by_workers[4].achieved_qps:.1f} qps vs "
            f"threaded baseline {baseline.achieved_qps:.1f} qps"
        )
