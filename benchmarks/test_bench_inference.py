"""[E7] Inference rate: interpreted vs compiled execution (LIPS).

Prolog-X is a *compiler*; the PDBM software component inherits that.
This bench measures the classic naive-reverse LIPS figure on both of our
execution engines — the tree-walking interpreter and the ZIP-style
compiled-clause machine — and checks they agree on the answer.  (These
are wall-clock Python numbers, not 1989 hardware projections; the point
is the engine-to-engine comparison and the workload itself.)
"""

from repro.engine import PrologMachine
from repro.storage import KnowledgeBase
from repro.terms import term_to_string
from tables import record_table

NREV_PROGRAM = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
"""

#: nrev on a 30-element list performs 496 logical inferences.
NREV30_INFERENCES = 496
NREV30_GOAL = "nrev([{items}], R)".format(items=", ".join(map(str, range(30))))
EXPECTED = "[" + ",".join(str(i) for i in reversed(range(30))) + "]"


def _machine() -> PrologMachine:
    kb = KnowledgeBase()
    kb.consult_text(NREV_PROGRAM)
    return PrologMachine(kb, unknown_predicates="fail")


def test_bench_nrev_interpreter(benchmark):
    machine = _machine()

    def run():
        return next(iter(machine.solve_text(NREV30_GOAL)))

    solution = benchmark(run)
    assert term_to_string(solution["R"]) == EXPECTED
    lips = NREV30_INFERENCES / benchmark.stats["mean"]
    record_table(
        "E7a",
        "nrev30 on the tree-walking interpreter",
        ("metric", "value"),
        [
            ("logical inferences", NREV30_INFERENCES),
            ("mean time s", round(benchmark.stats["mean"], 5)),
            ("LIPS", round(lips)),
        ],
    )


def test_bench_nrev_compiled(benchmark):
    machine = _machine()

    def run():
        return next(iter(machine.compiled_solve_text(NREV30_GOAL)))

    solution = benchmark(run)
    assert term_to_string(solution["R"]) == EXPECTED
    lips = NREV30_INFERENCES / benchmark.stats["mean"]
    record_table(
        "E7b",
        "nrev30 on the ZIP compiled-clause machine",
        ("metric", "value"),
        [
            ("logical inferences", NREV30_INFERENCES),
            ("mean time s", round(benchmark.stats["mean"], 5)),
            ("LIPS", round(lips)),
        ],
        notes="engines verified to produce the identical reversed list",
    )
