"""[E1] FS1 false drops: the three sources of section 2.1.

False drops ("ghosts") come from (1) non-unique encoding — hash
collisions, controlled by codeword width; (2) truncation — only the first
12 arguments are encoded; (3) variables invisible to the index — the
shared-variable queries.  Each source gets a sweep.
"""

from repro.scw import CodewordScheme, false_drop_probability, optimal_bits_per_key
from repro.terms import Atom, Clause, Struct, read_term, rename_apart
from repro.unify import unifiable
from repro.workloads import FactKBSpec, generate_couples, generate_facts
from tables import record_table


def _false_drop_rate(scheme, clauses, query):
    query_cw = scheme.query_codeword(query)
    candidates = 0
    answers = 0
    for clause in clauses:
        if scheme.matches(query_cw, scheme.clause_codeword(clause.head)):
            candidates += 1
        if unifiable(query, rename_apart(clause.head)):
            answers += 1
    assert candidates >= answers, "FS1 dropped a true unifier"
    false = candidates - answers
    return candidates, answers, false


def test_bench_codeword_width_sweep(benchmark):
    clauses = generate_facts(
        FactKBSpec(functor="r", arity=4, count=600, domain_sizes=(40, 40, 40, 40), seed=21)
    )
    queries = [clauses[i * 37].head for i in range(8)]

    def sweep():
        rows = []
        for width in (16, 32, 64, 128):
            scheme = CodewordScheme(width=width, bits_per_key=2, max_args=12)
            candidates = answers = 0
            for query in queries:
                c, a, _ = _false_drop_rate(scheme, clauses, query)
                candidates += c
                answers += a
            total = len(queries) * len(clauses)
            rows.append(
                (
                    width,
                    scheme.entry_bytes(),
                    candidates,
                    answers,
                    round(100 * (candidates - answers) / total, 3),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Wider codewords mean fewer false drops (non-unique encoding source).
    drop_rates = [row[4] for row in rows]
    assert drop_rates[0] >= drop_rates[-1]
    assert drop_rates[-1] < 1.0  # 128-bit codewords are nearly exact here
    record_table(
        "E1",
        "False drops vs codeword width (non-unique encoding)",
        ("width bits", "entry bytes", "candidates", "true answers", "false drop %"),
        rows,
    )


def test_bench_truncation(benchmark):
    """Arguments beyond max_args are not encoded: mismatches go unseen."""

    def truncation_rows():
        rows = []
        for arity in (4, 8, 12, 16, 20):
            scheme = CodewordScheme(width=64, bits_per_key=2, max_args=12)
            # Clauses agreeing with the query on the first 12 arguments but
            # differing beyond them.
            base = [Atom(f"k{i}") for i in range(arity)]
            query = Struct("t", tuple(base))
            decoys = []
            for d in range(50):
                args = list(base)
                args[arity - 1] = Atom(f"other{d}")  # differ in the LAST arg
                decoys.append(Clause(Struct("t", tuple(args))))
            query_cw = scheme.query_codeword(query)
            passed = sum(
                1
                for c in decoys
                if scheme.matches(query_cw, scheme.clause_codeword(c.head))
            )
            rows.append((arity, len(decoys), passed))
        return rows

    rows = benchmark.pedantic(truncation_rows, rounds=1, iterations=1)
    for arity, decoys, passed in rows:
        if arity <= 12:
            assert passed < decoys  # the differing argument is encoded
        else:
            assert passed == decoys  # truncated: every decoy is a ghost
    record_table(
        "E1b",
        "False drops from truncation (12 encoded arguments)",
        ("arity", "decoy clauses", "decoys passing FS1"),
        rows,
        notes="decoys differ from the query only in the final argument",
    )


def test_bench_analytic_vs_measured(benchmark):
    """The Roberts/ref-[11] formula against the real generator (E1d)."""
    clauses = generate_facts(
        FactKBSpec(
            functor="r", arity=4, count=500,
            domain_sizes=(10**6,) * 4, seed=77,  # effectively unique atoms
        )
    )
    # A query whose one constant matches no clause: every pass is a false
    # drop, and a single-key query keeps the rates measurably large.
    query = read_term("r(zz_a, V1, V2, V3)")
    record_keys = 4  # four ground atoms per head
    query_keys = 1

    def sweep():
        rows = []
        for width in (16, 24, 32, 48, 64):
            scheme = CodewordScheme(width=width, bits_per_key=2, max_args=12)
            query_cw = scheme.query_codeword(query)
            passed = sum(
                1
                for clause in clauses
                if scheme.matches(query_cw, scheme.clause_codeword(clause.head))
            )
            measured = passed / len(clauses)
            predicted = false_drop_probability(width, 2, record_keys, query_keys)
            rows.append(
                (
                    width,
                    round(100 * predicted, 3),
                    round(100 * measured, 3),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Order-of-magnitude agreement between theory and implementation.
    for width, predicted_pct, measured_pct in rows:
        assert measured_pct <= predicted_pct * 8 + 1.0
        if predicted_pct > 2:
            assert measured_pct >= predicted_pct / 8 - 1.0
    record_table(
        "E1d",
        "Analytic false-drop model vs the real codeword generator",
        ("width bits", "predicted %", "measured %"),
        rows,
        notes=f"optimal k at width 48, r=4 keys: "
        f"{optimal_bits_per_key(48, record_keys)} bits/key (50% saturation rule)",
    )


def test_bench_shared_variables(benchmark):
    """The married_couple(S, S) query retrieves the entire predicate."""
    clauses = generate_couples(count=800, same_surname_fraction=0.05, seed=17)
    scheme = CodewordScheme(width=96, bits_per_key=2)
    shared_query = read_term("married_couple(S, S)")
    ground_query = clauses[3].head

    def measure():
        rows = []
        for label, query in (
            ("ground married_couple(a, b)", ground_query),
            ("shared married_couple(S, S)", shared_query),
        ):
            candidates, answers, false = _false_drop_rate(scheme, clauses, query)
            rows.append(
                (label, candidates, answers, false,
                 round(100 * false / len(clauses), 2))
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    shared_row = rows[1]
    assert shared_row[1] == len(clauses)  # everything retrieved
    assert shared_row[2] < len(clauses) * 0.1  # yet few true answers
    record_table(
        "E1c",
        "False drops from shared variables (section 2.1 example)",
        ("query", "candidates", "true answers", "false drops", "false drop %"),
        rows,
        notes="FS1 is blind to the S=S constraint; FS2 exists for this case",
    )
