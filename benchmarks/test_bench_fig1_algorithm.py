"""[F1] The Figure 1 algorithm: hardware vs software oracle, and its effect.

Streams a clause corpus through the microcoded FS2 simulator and through
the pure-software level-3+cross-binding matcher, asserting zero
divergence, and reports how far partial test unification cuts the
candidate set on workloads with variables and structures.
"""

import random

from repro.pif import SymbolTable, compile_clause
from repro.terms import read_term, rename_apart
from repro.fs2 import SecondStageFilter
from repro.unify import PartialMatcher, unifiable
from repro.workloads import FactKBSpec, generate_facts
from tables import record_table


def _workload():
    rng = random.Random(31)
    clauses = generate_facts(
        FactKBSpec(
            functor="rec",
            arity=3,
            count=400,
            variable_fraction=0.15,
            structure_fraction=0.3,
            domain_sizes=(12, 12, 12),
            seed=8,
        )
    )
    queries = []
    for seed in range(6):
        head = clauses[rng.randrange(len(clauses))].head
        queries.append(head)
    queries.append(read_term("rec(S, S, X)"))
    queries.append(read_term("rec(c0_1, Y, Z)"))
    return clauses, queries


def test_bench_fig1_equivalence(benchmark):
    clauses, queries = _workload()
    symbols = SymbolTable()
    compiled = [compile_clause(c, symbols) for c in clauses]
    fs2 = SecondStageFilter(symbols)
    fs2.load_microprogram()

    def run_all():
        divergences = 0
        rows = []
        for query in queries:
            fs2.set_query(query)
            matcher = PartialMatcher(query)
            sim_hits = 0
            oracle_hits = 0
            for clause, record in zip(clauses, compiled):
                sim = fs2.match_compiled(record)
                oracle = matcher.match_head(clause.head).hit
                sim_hits += sim
                oracle_hits += oracle
                if sim != oracle:
                    divergences += 1
            rows.append((str(query), sim_hits, oracle_hits))
        return divergences, rows

    divergences, rows = benchmark(run_all)
    assert divergences == 0
    record_table(
        "F1",
        "Figure 1 algorithm: microcoded FS2 vs software oracle",
        ("query", "FS2 hits", "oracle hits"),
        rows,
        notes=f"divergences: {divergences} (must be 0) over "
        f"{len(queries)}x{len(clauses)} clause matches",
    )


def test_bench_fig1_soundness_and_filtering(benchmark):
    clauses, queries = _workload()

    def soundness_sweep():
        lost = 0
        total_candidates = 0
        total_answers = 0
        for query in queries:
            matcher = PartialMatcher(query)
            for clause in clauses:
                hit = matcher.match_head(clause.head).hit
                true = unifiable(query, rename_apart(clause.head))
                total_candidates += hit
                total_answers += true
                if true and not hit:
                    lost += 1
        return lost, total_candidates, total_answers

    lost, candidates, answers = benchmark(soundness_sweep)
    assert lost == 0
    total = len(queries) * len(clauses)
    record_table(
        "F1b",
        "Filter soundness and selectivity of level 3 + cross binding",
        ("quantity", "value"),
        [
            ("clause matches tested", total),
            ("true unifiers", answers),
            ("candidates passed", candidates),
            ("true unifiers lost", lost),
            ("false drops", candidates - answers),
            ("candidate fraction", round(candidates / total, 4)),
        ],
    )
