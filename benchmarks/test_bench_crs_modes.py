"""[E3] The four CRS searching modes across knowledge-base sizes.

Models end-to-end retrieval time (disk + FS1 + FS2 + host software) for
modes (a)-(d) on disk-resident predicates of growing size, for a
selective ground query and for the shared-variable query.  The shape to
reproduce: software-only scales worst; FS1 collapses the volume for
selective queries; FS2 is what saves shared-variable queries; the
two-stage pipeline is the best general choice at scale.
"""

from repro.crs import ClauseRetrievalServer, SearchMode
from repro.storage import KnowledgeBase, Residency
from repro.terms import read_term
from repro.workloads import FactKBSpec, generate_couples, generate_facts
from tables import record_table

SIZES = (200, 1000, 4000)


def _kb_of_size(count: int) -> tuple[KnowledgeBase, object]:
    kb = KnowledgeBase()
    # Structure-heavy records: realistic clause sizes make the index file
    # much smaller than the clause file, which is FS1's whole premise.
    clauses = generate_facts(
        FactKBSpec(
            functor="rec", arity=3, count=count, structure_fraction=0.8,
            domain_sizes=(count // 10, count // 10, count // 10), seed=29,
        )
    )
    kb.consult_clauses(clauses, module="data")
    kb.module("data").pin(Residency.DISK)
    kb.sync_to_disk()
    return kb, clauses[count // 2].head


def test_bench_modes_vs_kb_size(benchmark):
    unify_ns = ClauseRetrievalServer(KnowledgeBase()).cost_model.unify_per_candidate_ns

    def sweep():
        rows = []
        for count in SIZES:
            kb, query = _kb_of_size(count)
            crs = ClauseRetrievalServer(kb)
            times = {}
            candidates = {}
            for mode in SearchMode:
                result = crs.retrieve(query, mode=mode)
                # End-to-end: filtering plus host full unification over the
                # surviving candidates.
                times[mode] = (
                    result.stats.filter_time_s
                    + len(result.candidates) * unify_ns / 1e9
                ) * 1e3
                candidates[mode] = len(result.candidates)
            winner = min(times, key=times.get)
            rows.append(
                (
                    count,
                    round(times[SearchMode.SOFTWARE], 2),
                    round(times[SearchMode.FS1_ONLY], 2),
                    round(times[SearchMode.FS2_ONLY], 2),
                    round(times[SearchMode.BOTH], 2),
                    winner.value,
                    candidates[SearchMode.BOTH],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "E3",
        "Modelled retrieval time (ms) per CRS mode vs KB size "
        "(selective ground query)",
        ("clauses", "software", "fs1", "fs2", "fs1+fs2", "winner", "final cands"),
        rows,
    )
    largest = rows[-1]
    # At scale, software-only must be the slowest of the four.
    assert largest[1] == max(largest[1:5])
    # And the hardware winner's candidates are few.
    assert largest[6] <= 5


def test_bench_modes_shared_variable_query(benchmark):
    def shared_sweep():
        rows = []
        for count in SIZES:
            kb = KnowledgeBase()
            kb.consult_clauses(
                generate_couples(count=count, same_surname_fraction=0.05, seed=3),
                module="data",
            )
            kb.module("data").pin(Residency.DISK)
            kb.sync_to_disk()
            crs = ClauseRetrievalServer(kb)
            query = read_term("married_couple(S, S)")
            fs1 = crs.retrieve(query, mode=SearchMode.FS1_ONLY)
            fs2 = crs.retrieve(query, mode=SearchMode.FS2_ONLY)
            rows.append(
                (
                    count,
                    len(fs1.candidates),
                    len(fs2.candidates),
                    round(fs1.stats.filter_time_s * 1e3, 2),
                    round(fs2.stats.filter_time_s * 1e3, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(shared_sweep, rounds=1, iterations=1)
    for count, fs1_candidates, fs2_candidates, _, _ in rows:
        assert fs1_candidates == count  # FS1 is blind to shared variables
        assert fs2_candidates < count * 0.15
    record_table(
        "E3b",
        "Shared-variable query: candidate volume per mode vs KB size",
        ("clauses", "fs1 candidates", "fs2 candidates", "fs1 ms", "fs2 ms"),
        rows,
        notes="mode (c)/(d) selection for cross-bound queries, section 2.2",
    )
