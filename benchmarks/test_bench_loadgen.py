"""[E11] Network serving overhead: loadgen p50/p99 vs in-process calls.

The serving subsystem's cost claim: putting the cluster behind the TCP
frame protocol adds bounded per-request overhead — the open-loop p50
stays within a small multiple of the in-process retrieval time, and at
an offered load the admission controller can sustain, nothing is shed.
The absolute numbers land in ``BENCH_net.json`` at the repo root (the
CI smoke job uploads it alongside ``BENCH_fs1.json``/``BENCH_fs2.json``);
the assertions are deliberately loose — CI boxes are noisy and this
measures host wall clock, not modelled hardware time.
"""

import json
import pathlib
import time

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.net import BackgroundService, RetrievalService
from repro.terms import read_term
from repro.workloads import percentile, run_loadgen
from tables import record_table

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_net.json"


def build_engine(facts: int) -> ShardedRetrievalServer:
    engine = ShardedRetrievalServer(2, ShardingPolicy.FIRST_ARG)
    engine.consult_text(
        " ".join(f"edge(n{i}, n{(i * 7) % facts})." for i in range(facts))
    )
    return engine


def in_process_baseline(engine, goals, samples: int) -> list[float]:
    latencies = []
    for index in range(samples):
        goal = goals[index % len(goals)]
        begin = time.perf_counter()
        engine.retrieve(goal)
        latencies.append(time.perf_counter() - begin)
    return latencies


def test_bench_network_serving_overhead(quick):
    facts = 300 if quick else 2_000
    qps = 150.0 if quick else 400.0
    duration_s = 0.5 if quick else 2.0
    overhead_ceiling_ms = 250.0  # sanity bound, not a perf claim

    engine = build_engine(facts)
    goals = [
        read_term("edge(n1, X)"),
        read_term("edge(n17, X)"),
        read_term("edge(X, n0)"),
    ]
    baseline = in_process_baseline(engine, goals, samples=200)

    service = RetrievalService(engine, max_in_flight=4, queue_limit=32)
    with BackgroundService(service) as background:
        host, port = background.start()
        result = run_loadgen(
            host, port, goals, qps=qps, duration_s=duration_s
        )

    base_p50_ms = percentile(baseline, 0.50) * 1e3
    base_p99_ms = percentile(baseline, 0.99) * 1e3
    net_p50_ms = result.latency_s(0.50) * 1e3
    net_p99_ms = result.latency_s(0.99) * 1e3

    payload = {
        "facts": facts,
        "offered": result.offered,
        "ok": result.ok,
        "busy": result.busy,
        "deadline_expired": result.deadline_expired,
        "errors": result.errors,
        "achieved_qps": round(result.achieved_qps, 1),
        "in_process_p50_ms": round(base_p50_ms, 4),
        "in_process_p99_ms": round(base_p99_ms, 4),
        "network_p50_ms": round(net_p50_ms, 4),
        "network_p99_ms": round(net_p99_ms, 4),
        "overhead_p50_ms": round(net_p50_ms - base_p50_ms, 4),
        "quick": quick,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_table(
        "E11",
        "Network serving vs in-process retrieval (host wall clock)",
        ("path", "requests", "p50 ms", "p99 ms"),
        [
            ("in-process", len(baseline), round(base_p50_ms, 3),
             round(base_p99_ms, 3)),
            ("loopback TCP", result.ok, round(net_p50_ms, 3),
             round(net_p99_ms, 3)),
        ],
        notes=(
            f"open-loop {qps:g} qps for {duration_s:g}s, "
            f"busy={result.busy} deadline={result.deadline_expired} "
            f"errors={result.errors}; results in {RESULT_PATH.name}"
        ),
    )

    # The service must sustain the offered load without shedding...
    assert result.errors == 0
    assert result.ok + result.busy == result.offered
    assert result.ok > 0.8 * result.offered
    # ...and loopback overhead stays within a sane bound.
    assert net_p50_ms < overhead_ceiling_ms
    assert net_p99_ms < 4 * overhead_ceiling_ms
