"""[E5] Secondary file vs clause file size (section 2.1's premise).

"The size of a secondary file is generally much smaller than that of a
compiled clause file, thereby enabling quicker retrieval to be achieved
by scanning the former than by searching the latter exhaustively."
Sweeps codeword width to expose the size/selectivity trade-off.
"""

from repro.pif import ClauseFile, SymbolTable
from repro.scw import (
    CodewordScheme,
    SecondaryIndexFile,
    false_drop_probability,
    optimal_bits_per_key,
    recommend_width,
)
from repro.workloads import FactKBSpec, generate_facts
from tables import record_table


def _clause_file(count: int = 800):
    symbols = SymbolTable()
    clause_file = ClauseFile(("rec", 3), symbols)
    for clause in generate_facts(
        FactKBSpec(
            functor="rec", arity=3, count=count,
            structure_fraction=0.3, domain_sizes=(50, 50, 50), seed=41,
        )
    ):
        clause_file.append(clause)
    return clause_file


def test_bench_index_build(benchmark):
    clause_file = _clause_file()
    scheme = CodewordScheme(width=96)
    index = benchmark(SecondaryIndexFile.build, clause_file, scheme)
    assert len(index) == len(clause_file)


def test_bench_codeword_design_tool(benchmark):
    """[E5b] Sizing the index for Warren's medium KB with the analytics.

    For 3M facts of ~5 ground keys each, what codeword width keeps false
    drops below various targets, and what does the secondary file cost?
    """
    record_keys = 5
    query_keys = 2
    facts = 3_000_000

    def design():
        rows = []
        for target in (0.1, 0.01, 0.001):
            width, k = recommend_width(record_keys, query_keys, target)
            entry_bytes = (width + 7) // 8 + 2 + 4  # codeword + mask + addr
            index_mb = facts * entry_bytes / 1e6
            expected_ghosts = facts * false_drop_probability(
                width, k, record_keys, query_keys
            )
            rows.append(
                (
                    f"{100 * target:g}%",
                    width,
                    k,
                    entry_bytes,
                    round(index_mb, 1),
                    round(expected_ghosts),
                )
            )
        return rows

    rows = benchmark.pedantic(design, rounds=1, iterations=1)
    widths = [row[1] for row in rows]
    assert widths == sorted(widths)  # tighter targets need wider codewords
    record_table(
        "E5b",
        "Codeword design for Warren's 3M-fact KB (analytic sizing tool)",
        ("false-drop target", "width bits", "k", "entry bytes", "index MB", "ghosts / full scan"),
        rows,
        notes=f"optimal k rule: k = b ln2 / r; r={record_keys} keys per fact, "
        f"{query_keys}-key queries",
    )


def test_bench_size_ratio_sweep(benchmark):
    clause_file = _clause_file()
    data_bytes = clause_file.size_bytes()
    queries = [clause_file.decode_clause(i * 53).head for i in range(8)]

    def sweep():
        rows = []
        for width in (32, 64, 96, 128, 256):
            scheme = CodewordScheme(width=width, bits_per_key=2)
            index = SecondaryIndexFile.build(clause_file, scheme)
            index_bytes = index.size_bytes()
            candidates = 0
            for query in queries:
                candidates += len(index.scan(scheme.query_codeword(query)))
            selectivity = candidates / (len(queries) * len(clause_file))
            rows.append(
                (
                    width,
                    index_bytes,
                    data_bytes,
                    round(data_bytes / index_bytes, 1),
                    round(100 * selectivity, 3),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for width, index_bytes, total_bytes, ratio, _ in rows:
        if width <= 128:
            assert index_bytes < total_bytes, "index must be smaller than data"
    # Selectivity improves (or holds) as the codeword widens.
    drops = [row[4] for row in rows]
    assert drops[0] >= drops[-1]
    record_table(
        "E5",
        "Secondary file vs compiled clause file size (codeword sweep)",
        ("width bits", "index bytes", "data bytes", "data/index", "candidates %"),
        rows,
        notes="scan volume saved by FS1 = data bytes - index bytes "
        "(plus only candidate clauses fetched afterwards)",
    )
