"""Benchmark-suite plumbing: collect reproduced tables and print them.

Each benchmark registers the table/figure rows it regenerates via
:func:`benchmarks.tables.record_table`; this conftest prints every
registered table in the terminal summary (uncaptured) and writes them to
``benchmarks/results.txt`` for EXPERIMENTS.md.
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from tables import format_tables, registered_tables  # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark workloads for CI smoke runs (fewer "
        "entries, relaxed speedup floors)",
    )


@pytest.fixture
def quick(request) -> bool:
    """True when the suite runs under ``--quick`` (CI smoke mode)."""
    return request.config.getoption("--quick")


def pytest_terminal_summary(terminalreporter):
    tables = registered_tables()
    if not tables:
        return
    text = format_tables(tables)
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 70)
    terminalreporter.write_line("REPRODUCED TABLES AND FIGURES")
    terminalreporter.write_line("=" * 70)
    for line in text.splitlines():
        terminalreporter.write_line(line)
    RESULTS_PATH.write_text(text)
    terminalreporter.write_line(f"(also written to {RESULTS_PATH})")
