"""[TA1] Regenerate Table A1: the CLARE data type scheme.

Prints the tag assignments as published, audits the enumerable tag space
against the paper's "107 data types" claim, and measures the PIF
encode/decode throughput on a mixed corpus (the compiler feeding CLARE).
"""

from repro.pif import PIFDecoder, PIFEncoder, SymbolTable, tags
from repro.terms import read_term
from tables import record_table

_CORPUS_TEXTS = [
    "p(a, b, c)",
    "p(1, -200000, 3.5)",
    "p(X, Y, X)",
    "p(_, foo, _)",
    "p(f(a, 1), g(X), h(i(j)))",
    "p([1, 2, 3], [a | T], [])",
    "p([f(X), [1, [2]]], atom, 99)",
    "p('quoted atom', [x, y, z | Rest], s(t, u, v, w))",
]


def _corpus():
    return [read_term(text) for text in _CORPUS_TEXTS]


def test_bench_tablea1_scheme(benchmark):
    inventory = benchmark(tags.tag_inventory)
    rows = [
        ("Anonymous Var", f"0x{tags.TAG_ANONYMOUS_VAR:02x}", "0010 0000"),
        ("First Query Var", f"0x{tags.TAG_FIRST_QUERY_VAR:02x}", "0010 0111"),
        ("Subsequent Query Var", f"0x{tags.TAG_SUB_QUERY_VAR:02x}", "0010 0101"),
        ("First DB Var", f"0x{tags.TAG_FIRST_DB_VAR:02x}", "0010 0110"),
        ("Subsequent DB Var", f"0x{tags.TAG_SUB_DB_VAR:02x}", "0010 0100"),
        ("Atom Pointer", f"0x{tags.TAG_ATOM_PTR:02x}", "0000 1000"),
        ("Float Pointer", f"0x{tags.TAG_FLOAT_PTR:02x}", "0000 1001"),
        ("Integer In-line", "0x1N", "0001 nnnn"),
        ("Structure In-line", "0x6a", "011a aaaa"),
        ("Structure Pointer", "0x4a", "010a aaaa"),
        ("Terminated List In-line", "0xEa", "111a aaaa"),
        ("Unterminated List In-line", "0xAa", "101a aaaa"),
        ("Terminated List Pointer", "0xCa", "110a aaaa"),
        ("Unterminated List Pointer", "0x8a", "100a aaaa"),
    ]
    record_table(
        "TA1",
        "Table A1: CLARE data type scheme (tag assignments)",
        ("item", "tag", "bit pattern"),
        rows,
    )
    total = sum(len(v) for v in inventory.values())
    record_table(
        "TA1b",
        "Data type inventory vs the paper's claim",
        ("group", "distinct tags"),
        [*((group, len(values)) for group, values in inventory.items()),
         ("TOTAL (paper claims 107)", total)],
        notes="the paper gives no enumeration; see EXPERIMENTS.md",
    )
    assert 80 <= total <= 160


def test_bench_pif_encode(benchmark):
    corpus = _corpus()

    def encode_all():
        symbols = SymbolTable()
        encoder = PIFEncoder(symbols, side="db")
        return [encoder.encode_head(term) for term in corpus], symbols

    encoded, _ = benchmark(encode_all)
    assert all(e.size_bytes > 0 for e in encoded)


def test_bench_pif_roundtrip(benchmark):
    corpus = _corpus()
    symbols = SymbolTable()
    encoder = PIFEncoder(symbols, side="db")
    encoded = [encoder.encode_head(term) for term in corpus]
    decoder = PIFDecoder(symbols)

    def decode_all():
        return [decoder.decode_head(e) for e in encoded]

    decoded = benchmark(decode_all)
    assert decoded == corpus
    record_table(
        "TA1c",
        "PIF encoding sizes on the mixed corpus",
        ("term", "stream bytes", "heap bytes"),
        [
            (text, len(e.stream), len(e.heap))
            for text, e in zip(_CORPUS_TEXTS, encoded)
        ],
    )
