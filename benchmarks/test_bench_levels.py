"""[E2] The five matching levels: the ablation behind choosing level 3.

The paper investigates five partial-test-unification depths and adopts
level 3 plus cross-binding checks because levels 4 and 5 cost too much
hardware.  This bench measures, per level (with and without cross-binding
checks), the surviving candidate volume and the modelled matching cost on
a workload rich in structures and repeated variables.
"""

from repro.fs2.timing import execution_time_ns
from repro.terms import read_term, rename_apart
from repro.unify import MatchLevel, PartialMatcher, unifiable
from repro.workloads import FactKBSpec, generate_facts
from tables import record_table


def _workload():
    import random

    from repro.terms import Atom, Clause, Int, Struct

    rng = random.Random(23)
    clauses = list(
        generate_facts(
            FactKBSpec(
                functor="rec",
                arity=3,
                count=350,
                variable_fraction=0.2,
                structure_fraction=0.4,
                domain_sizes=(10, 10, 10),
                seed=23,
            )
        )
    )
    # Depth-2 structures whose differences are invisible to level 3:
    # rec(deep(g(K)), cN, M) varies K below the first structure level.
    for row in range(150):
        clauses.append(
            Clause(
                Struct(
                    "rec",
                    (
                        Struct("deep", (Struct("g", (Int(row % 12),)),)),
                        Atom(f"c1_{rng.randrange(10)}"),
                        Int(row),
                    ),
                )
            )
        )
    rng.shuffle(clauses)
    queries = [clauses[i * 41].head for i in range(6)]
    queries.append(read_term("rec(S, S, Z)"))
    queries.append(read_term("rec(c0_2, s1(c1_3, 3), W)"))
    queries.append(read_term("rec(deep(g(7)), C, M)"))
    return clauses, queries


def test_bench_level_ablation(benchmark):
    clauses, queries = _workload()
    answers = sum(
        unifiable(q, rename_apart(c.head)) for q in queries for c in clauses
    )
    total = len(queries) * len(clauses)

    def ablation():
        rows = []
        for level in MatchLevel:
            for cross in (False, True):
                if level == MatchLevel.FULL_WITH_CROSS_BINDING and not cross:
                    continue
                candidates = 0
                op_time = 0
                for query in queries:
                    matcher = PartialMatcher(query, level=level, cross_binding=cross)
                    for clause in clauses:
                        outcome = matcher.match_head(clause.head)
                        candidates += outcome.hit
                        op_time += sum(
                            execution_time_ns(op) * count
                            for op, count in outcome.ops.items()
                        )
                rows.append(
                    (
                        int(level),
                        "yes" if cross else "no",
                        candidates,
                        candidates - answers,
                        round(100 * (candidates - answers) / total, 2),
                        round(op_time / 1e3, 1),
                    )
                )
        return rows

    rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
    # Candidates shrink monotonically with level (cross-binding fixed).
    with_cross = [r for r in rows if r[1] == "yes"]
    candidate_counts = [r[2] for r in with_cross]
    assert candidate_counts == sorted(candidate_counts, reverse=True)
    # Every level is sound: candidates never fall below the true answers.
    assert all(r[2] >= answers for r in rows)
    # Cross-binding checks only remove candidates.
    by_level = {}
    for r in rows:
        by_level.setdefault(r[0], {})[r[1]] = r[2]
    for level, variants in by_level.items():
        if "no" in variants and "yes" in variants:
            assert variants["yes"] <= variants["no"]
    record_table(
        "E2",
        "Matching levels 1-5: candidates and modelled op cost "
        f"({total} matches, {answers} true answers)",
        ("level", "cross bind", "candidates", "false drops", "false drop %", "op time us"),
        rows,
        notes="the paper adopts level 3 + cross binding: each level tightens "
        "the candidate set, but levels 4/5 need unbounded-depth hardware",
    )
