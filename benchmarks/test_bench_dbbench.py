"""[E6] The database-viewpoint benchmark suite (paper refs [6, 7]).

Section 4 promises CLARE "will be subjected to benchmark tests similar to
the ones devised in [7]" — Prolog-as-a-database benchmarks: selections of
controlled selectivity, joins via rules, recursive closure, and a pure
inference control.  Each program runs end-to-end through the integrated
machine; the table reports answers, retrievals, clauses scanned, and the
modelled filter time under the planner-selected modes.
"""

from repro.engine import PrologMachine
from repro.workloads import standard_suite
from tables import record_table

ROWS = 800


def test_bench_db_suite(benchmark):
    suite = standard_suite(rows=ROWS, seed=0)

    def run_suite():
        rows = []
        for program in suite:
            kb = program.build()
            machine = PrologMachine(
                kb, unknown_predicates="fail", load_library=True
            )
            answers = sum(1 for _ in machine.solve(program.goal))
            stats = machine.stats
            modes = "+".join(
                sorted(mode.value for mode in stats.mode_uses)
            )
            rows.append(
                (
                    program.name,
                    answers,
                    program.expected_answers,
                    stats.retrievals,
                    stats.clauses_scanned,
                    round(stats.filter_time_s * 1e3, 2),
                    modes,
                )
            )
        return rows

    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    by_name = {row[0]: row for row in rows}
    for program in suite:
        answers = by_name[program.name][1]
        if program.expected_answers >= 0:
            assert answers == program.expected_answers, program.name
        else:
            assert answers > 0, program.name
    # Selection benchmarks must not pass the whole table to unification.
    assert by_name["select_exact"][1] < ROWS / 10
    record_table(
        "E6",
        f"Database-viewpoint benchmark suite ([6,7] style), {ROWS}-row tables",
        (
            "program",
            "answers",
            "expected",
            "retrievals",
            "clauses scanned",
            "filter ms",
            "modes used",
        ),
        rows,
        notes="answers verified against independent ground truth",
    )
