"""[E9] Bit-sliced vs naive FS1 scan wall clock (host-side speedup).

The tentpole claim for the columnar signature index: on a large
predicate, ANDing a handful of bit-columns (one big-int op each) beats
the per-entry ``scheme.matches`` loop by well over an order of
magnitude, and batching K queries over one column pass amortises the
remaining cost further.  The simulated SCW+MB timing model is
deliberately untouched — this benchmark measures the *host's* clock.

Results land in ``BENCH_fs1.json`` at the repo root (the CI smoke job
uploads it as an artifact).  Under ``--quick`` the workload shrinks and
the speedup floor relaxes so the smoke run stays fast on small runners.
"""

import json
import pathlib
import statistics
import time

from repro.scw import CodewordScheme, SecondaryIndexFile
from repro.workloads import FactKBSpec, generate_facts, ground_query_for
from tables import record_table

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_fs1.json"

SCHEME = CodewordScheme(width=96, bits_per_key=2)


def build_index(entries: int) -> tuple[SecondaryIndexFile, list]:
    clauses = generate_facts(
        FactKBSpec(
            functor="big",
            arity=3,
            count=entries,
            structure_fraction=0.2,
            domain_sizes=(500, entries // 4, 40),
            seed=97,
        )
    )
    index = SecondaryIndexFile(SCHEME, ("big", 3))
    for position, clause in enumerate(clauses):
        index.add(clause.head, position * 48)
    return index, clauses


def make_queries(clauses, count: int) -> list:
    queries = []
    for seed in range(count):
        bound = 1 + seed % 3
        queries.append(
            ground_query_for(clauses, seed=seed, bound_arguments=bound)
        )
    return queries


def best_of(runs: int, fn) -> float:
    """Best-of-N wall clock: robust to scheduler noise on CI runners."""
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_bitsliced_vs_naive(quick):
    entries = 2_000 if quick else 12_000
    query_count = 8 if quick else 16
    runs = 2 if quick else 3
    floor = 2.0 if quick else 5.0

    index, clauses = build_index(entries)
    queries = make_queries(clauses, query_count)
    codewords = [SCHEME.query_codeword(q) for q in queries]
    sliced = index.bitsliced  # build the columns outside the timed region

    naive_results = [index.scan(cw) for cw in codewords]
    assert [sliced.scan(cw) for cw in codewords] == naive_results
    batched_results, _ = sliced.scan_batch(codewords)
    assert batched_results == naive_results
    survivors = statistics.mean(len(r) for r in naive_results)

    naive_s = best_of(runs, lambda: [index.scan(cw) for cw in codewords])
    bitsliced_s = best_of(runs, lambda: [sliced.scan(cw) for cw in codewords])
    batched_s = best_of(runs, lambda: sliced.scan_batch(codewords))

    speedup = naive_s / bitsliced_s
    batch_speedup = naive_s / batched_s
    payload = {
        "entries": entries,
        "queries": query_count,
        "mean_survivors": round(survivors, 1),
        "scheme": {
            "width": SCHEME.width,
            "bits_per_key": SCHEME.bits_per_key,
            "max_args": SCHEME.max_args,
        },
        "naive_s": naive_s,
        "bitsliced_s": bitsliced_s,
        "batched_s": batched_s,
        "speedup_bitsliced": round(speedup, 2),
        "speedup_batched": round(batch_speedup, 2),
        "quick": quick,
        "floor": floor,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_table(
        "E9",
        "Bit-sliced FS1 scan vs naive per-entry loop (host wall clock)",
        ("engine", "entries", "queries", "seconds", "speedup"),
        [
            ("naive scan", entries, query_count, round(naive_s, 6), 1.0),
            (
                "bit-sliced",
                entries,
                query_count,
                round(bitsliced_s, 6),
                round(speedup, 1),
            ),
            (
                "bit-sliced batched",
                entries,
                query_count,
                round(batched_s, 6),
                round(batch_speedup, 1),
            ),
        ],
        notes=f"identical candidate sets verified; results in {RESULT_PATH.name}",
    )

    assert speedup >= floor, (
        f"bit-sliced scan only {speedup:.1f}x faster than naive "
        f"(floor {floor}x) over {entries} entries"
    )
    assert batch_speedup >= floor
