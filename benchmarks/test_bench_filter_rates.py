"""[R1] Filter rates vs disk rates (section 4's headline numbers).

The paper argues CLARE always outruns the disk feeding it: FS1 searches at
up to 4.5 MB/s, FS2's worst case is 1 op / 235 ns ~= 4.25 MB/s, and even
the fast SMD disk peaks around 2 MB/s.  This bench regenerates those
numbers and sweeps the FS2 rate across operation mixes (the figure-style
series: rate as the share of worst-case operations grows).
"""

import pytest

from repro.disk import FUJITSU_M2351A, MICROPOLIS_1325
from repro.fs2.timing import execution_time_ns, worst_case_rate_bytes_per_sec
from repro.scw import FS1_SCAN_RATE_BYTES_PER_SEC
from repro.unify import HardwareOp
from tables import record_table


def _mixed_rate(worst_fraction: float) -> float:
    """FS2 byte rate when a fraction of ops are worst-case fetches."""
    best = execution_time_ns(HardwareOp.MATCH)
    worst = execution_time_ns(HardwareOp.QUERY_CROSS_BOUND_FETCH)
    mean_ns = worst_fraction * worst + (1 - worst_fraction) * best
    return 1e9 / mean_ns


def test_bench_headline_rates(benchmark):
    def rates():
        return {
            "FS1 scan": FS1_SCAN_RATE_BYTES_PER_SEC,
            "FS2 worst case": worst_case_rate_bytes_per_sec(),
            "FS2 best case (all MATCH)": _mixed_rate(0.0),
            "disk peak (Fujitsu M2351A SMD)": FUJITSU_M2351A.transfer_rate_bytes_per_sec,
            "disk (Micropolis 1325 SCSI)": MICROPOLIS_1325.transfer_rate_bytes_per_sec,
        }

    rates = benchmark(rates)
    assert rates["FS2 worst case"] == pytest.approx(4.25e6, rel=0.01)
    assert rates["FS1 scan"] == 4.5e6
    assert rates["FS2 worst case"] > rates["disk peak (Fujitsu M2351A SMD)"]
    assert rates["FS1 scan"] > rates["disk peak (Fujitsu M2351A SMD)"]
    record_table(
        "R1",
        "Section 4 rates: the filters always outrun the disk",
        ("component", "MB/s"),
        [(name, value / 1e6) for name, value in rates.items()],
        notes="paper: FS1 4.5 MB/s, FS2 worst 4.25 MB/s, disk circa 2 MB/s",
    )


def test_bench_rate_vs_op_mix(benchmark):
    fractions = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]

    def sweep():
        return [(f, _mixed_rate(f) / 1e6) for f in fractions]

    series = benchmark(sweep)
    # Monotone decreasing, bounded by best/worst cases.
    rates = [rate for _, rate in series]
    assert rates == sorted(rates, reverse=True)
    assert rates[0] == pytest.approx(1e3 / 105, rel=0.01)
    assert rates[-1] == pytest.approx(4.25, rel=0.01)
    disk = FUJITSU_M2351A.transfer_rate_bytes_per_sec / 1e6
    record_table(
        "R1b",
        "FS2 filter rate vs share of worst-case operations (figure series)",
        ("worst-op fraction", "FS2 MB/s", "above 2 MB/s disk?"),
        [(f, rate, "yes" if rate > disk else "NO") for f, rate in series],
        notes="the filter never becomes the bottleneck at any mix",
    )
    assert all(rate > disk for _, rate in series)
