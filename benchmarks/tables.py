"""A tiny registry for the tables/figures the benchmark suite regenerates."""

from __future__ import annotations

from dataclasses import dataclass, field

_REGISTRY: dict[str, "ReproTable"] = {}


@dataclass
class ReproTable:
    """One regenerated table or figure-series."""

    experiment: str  # e.g. "T1", "E3"
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""


def record_table(
    experiment: str,
    title: str,
    headers: tuple[str, ...],
    rows: list[tuple],
    notes: str = "",
) -> ReproTable:
    """Register (or replace) a regenerated table for the summary output."""
    table = ReproTable(
        experiment=experiment,
        title=title,
        headers=headers,
        rows=list(rows),
        notes=notes,
    )
    _REGISTRY[f"{experiment}:{title}"] = table
    return table


def registered_tables() -> list[ReproTable]:
    return [table for _, table in sorted(_REGISTRY.items())]


def format_tables(tables: list[ReproTable]) -> str:
    blocks = []
    for table in tables:
        blocks.append(_format_one(table))
    return "\n\n".join(blocks) + "\n"


def _format_one(table: ReproTable) -> str:
    cells = [tuple(str(h) for h in table.headers)]
    for row in table.rows:
        cells.append(tuple(_fmt(value) for value in row))
    widths = [
        max(len(row[column]) for row in cells if column < len(row))
        for column in range(len(table.headers))
    ]
    lines = [f"[{table.experiment}] {table.title}"]
    lines.append(
        "  " + "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    )
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if table.notes:
        lines.append(f"  note: {table.notes}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)
