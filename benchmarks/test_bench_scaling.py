"""[E4] Scaling: in-memory Prolog vs the CLARE pipeline as KBs grow.

The paper's footnote: conventional Prolog systems on a 4 MB Sun3/160
"were unable to cope with more than about 60k clauses and even then the
overhead of loading these clauses into main memory was very high".  This
bench models the comparison: loading a predicate into a 4 MB heap and
scanning it in software vs streaming it from disk through the two-stage
filter, across knowledge-base sizes up to (a scaled) Warren medium KB.
"""

from repro.crs import ClauseRetrievalServer, HostCostModel, SearchMode
from repro.engine import PrologMachine
from repro.storage import KnowledgeBase, Residency
from repro.workloads import (
    FactKBSpec,
    build_warren_kb,
    generate_facts,
    open_query,
    warren_kb_spec,
)
from tables import record_table

#: The Sun3/160 of the paper's footnote.
HOST_MEMORY_BYTES = 4 * 1024 * 1024
#: Modelled in-memory bytes per loaded clause (heap term + index overhead).
LOADED_BYTES_PER_CLAUSE = 64


def test_bench_memory_wall(benchmark):
    """Where does the in-memory approach hit the 4 MB wall?"""

    def wall():
        rows = []
        for clauses in (10_000, 30_000, 60_000, 120_000, 500_000):
            loaded = clauses * LOADED_BYTES_PER_CLAUSE
            fits = loaded <= HOST_MEMORY_BYTES
            # Loading cost: read the whole file once + build heap terms.
            model = HostCostModel()
            load_s = clauses * model.clause_decode_ns / 1e9 + loaded / 2e6
            rows.append(
                (
                    clauses,
                    round(loaded / 1e6, 2),
                    "yes" if fits else "NO",
                    round(load_s, 2) if fits else float("nan"),
                )
            )
        return rows

    rows = benchmark.pedantic(wall, rounds=1, iterations=1)
    fits_flags = [row[2] for row in rows]
    assert "NO" in fits_flags  # the wall exists
    assert fits_flags[0] == "yes"
    wall_at = next(row[0] for row in rows if row[2] == "NO")
    assert wall_at <= 120_000  # around the paper's ~60k observation
    record_table(
        "E4",
        "The in-memory wall on a 4 MB host (paper footnote, section 1)",
        ("clauses", "heap MB", "fits 4 MB?", "load time s"),
        rows,
        notes=f"{LOADED_BYTES_PER_CLAUSE} bytes per loaded clause assumed",
    )


def test_bench_scaling_software_vs_clare(benchmark):
    def scaling():
        rows = []
        for count in (500, 2000, 8000):
            kb = KnowledgeBase()
            clauses = generate_facts(
                FactKBSpec(
                    functor="rec", arity=3, count=count,
                    domain_sizes=(count // 10,) * 3, seed=37,
                )
            )
            kb.consult_clauses(clauses, module="data")
            kb.module("data").pin(Residency.DISK)
            kb.sync_to_disk()
            crs = ClauseRetrievalServer(kb)
            query = clauses[count // 3].head
            software = crs.retrieve(query, mode=SearchMode.SOFTWARE).stats
            pipeline = crs.retrieve(query, mode=SearchMode.BOTH).stats
            rows.append(
                (
                    count,
                    round(software.filter_time_s * 1e3, 2),
                    round(pipeline.filter_time_s * 1e3, 2),
                    round(software.filter_time_s / pipeline.filter_time_s, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(scaling, rounds=1, iterations=1)
    speedups = [row[3] for row in rows]
    # CLARE's advantage grows with knowledge-base size.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2
    record_table(
        "E4b",
        "Retrieval time scaling: software vs the FS1+FS2 pipeline",
        ("clauses", "software ms", "fs1+fs2 ms", "speedup"),
        rows,
    )


def test_bench_warren_kb_queries(benchmark):
    """Run real queries against a scaled Warren medium-size KB."""
    kb = build_warren_kb(warren_kb_spec(0.002), seed=5)
    machine = PrologMachine(kb, unknown_predicates="fail")
    goals = [open_query(*indicator) for indicator in kb.predicates()[:4]]

    def run_queries():
        solutions = 0
        for goal in goals:
            for _ in machine.solve(goal):
                solutions += 1
                if solutions % 50 == 0:
                    break
        return solutions

    solutions = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    assert solutions > 0
    spec = warren_kb_spec(0.002)
    record_table(
        "E4c",
        "Scaled Warren medium-size KB (section 1)",
        ("quantity", "value"),
        [
            ("scale factor", spec.scale),
            ("predicates", len(kb.predicates())),
            ("clauses", kb.clause_count()),
            ("compiled bytes", kb.size_bytes()),
            ("solutions sampled", solutions),
        ],
        notes="full size: 3000 predicates / 30000 rules / 3M facts / 30 MB",
    )
