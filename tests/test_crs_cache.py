"""Tests for the CRS retrieval cache and KB versioning."""

from repro.crs import ClauseRetrievalServer, SearchMode
from repro.engine import PrologMachine
from repro.storage import KnowledgeBase
from repro.terms import read_term


def make_kb():
    kb = KnowledgeBase()
    kb.consult_text(" ".join(f"p(a{i})." for i in range(50)))
    return kb


class TestKBVersion:
    def test_version_bumps_on_mutation(self):
        kb = make_kb()
        v0 = kb.version
        kb.assertz(read_term("p(new)"))
        assert kb.version > v0
        v1 = kb.version
        kb.asserta(read_term("p(front)"))
        assert kb.version > v1
        v2 = kb.version
        kb.retract(read_term("p(front)"))
        assert kb.version > v2

    def test_failed_retract_no_bump(self):
        kb = make_kb()
        version = kb.version
        assert not kb.retract(read_term("p(nothing)"))
        assert kb.version == version


class TestRetrievalCache:
    def test_cache_hits(self):
        kb = make_kb()
        crs = ClauseRetrievalServer(kb, cache_size=16)
        goal = read_term("p(a3)")
        first = crs.retrieve(goal, mode=SearchMode.SOFTWARE)
        second = crs.retrieve(goal, mode=SearchMode.SOFTWARE)
        assert crs.cache_hits == 1
        assert crs.cache_misses == 1
        assert [str(c) for c in second.candidates] == [
            str(c) for c in first.candidates
        ]

    def test_cache_hit_costs_nothing(self):
        kb = make_kb()
        crs = ClauseRetrievalServer(kb, cache_size=16)
        goal = read_term("p(a3)")
        crs.retrieve(goal, mode=SearchMode.SOFTWARE)
        hit = crs.retrieve(goal, mode=SearchMode.SOFTWARE)
        assert hit.stats is not None
        assert hit.stats.filter_time_s == 0.0
        assert hit.stats.final_candidates == 1

    def test_cache_invalidated_by_updates(self):
        kb = make_kb()
        crs = ClauseRetrievalServer(kb, cache_size=16)
        goal = read_term("p(X)")
        assert len(crs.retrieve(goal, mode=SearchMode.SOFTWARE)) == 50
        kb.assertz(read_term("p(extra)"))
        assert len(crs.retrieve(goal, mode=SearchMode.SOFTWARE)) == 51
        assert crs.cache_hits == 0  # stale entry was never served

    def test_lru_eviction(self):
        kb = make_kb()
        crs = ClauseRetrievalServer(kb, cache_size=2)
        for i in range(4):
            crs.retrieve(read_term(f"p(a{i})"), mode=SearchMode.SOFTWARE)
        assert len(crs._cache) == 2

    def test_cache_off_by_default(self):
        kb = make_kb()
        crs = ClauseRetrievalServer(kb)
        goal = read_term("p(a3)")
        crs.retrieve(goal)
        crs.retrieve(goal)
        assert crs.cache_hits == 0 and crs.cache_misses == 0

    def test_distinct_modes_cached_separately(self):
        kb = make_kb()
        crs = ClauseRetrievalServer(kb, cache_size=16)
        goal = read_term("p(a3)")
        crs.retrieve(goal, mode=SearchMode.SOFTWARE)
        crs.retrieve(goal, mode=SearchMode.FS2_ONLY)
        assert crs.cache_misses == 2

    def test_anonymous_variable_hits_named_variable_entry(self):
        # p(_, a) and p(X, a) canonicalise to the same key: every `_` is
        # a singleton, indistinguishable from a named variable used once.
        kb = KnowledgeBase()
        kb.consult_text(" ".join(f"q(a{i}, b{i})." for i in range(10)))
        crs = ClauseRetrievalServer(kb, cache_size=16)
        crs.retrieve(read_term("q(X, b3)"), mode=SearchMode.SOFTWARE)
        result = crs.retrieve(read_term("q(_, b3)"), mode=SearchMode.SOFTWARE)
        assert crs.cache_hits == 1
        assert crs.cache_misses == 1
        assert len(result) == 1

    def test_multiple_anonymous_variables_stay_distinct(self):
        # q(_, _) must NOT share a key with q(X, X): the shared variable
        # constrains both arguments, the anonymous pair does not.
        kb = KnowledgeBase()
        kb.consult_text("q(a, a). q(a, b).")
        crs = ClauseRetrievalServer(kb, cache_size=16)
        crs.retrieve(read_term("q(X, X)"), mode=SearchMode.SOFTWARE)
        result = crs.retrieve(read_term("q(_, _)"), mode=SearchMode.SOFTWARE)
        assert crs.cache_misses == 2
        assert len(result) == 2

    def test_variable_renaming_hits(self):
        kb = make_kb()
        crs = ClauseRetrievalServer(kb, cache_size=16)
        crs.retrieve(read_term("p(Foo)"), mode=SearchMode.SOFTWARE)
        crs.retrieve(read_term("p(Bar)"), mode=SearchMode.SOFTWARE)
        assert crs.cache_hits == 1

    def test_cache_hit_view_preserves_counts_zeroes_time(self):
        kb = make_kb()
        crs = ClauseRetrievalServer(kb, cache_size=16)
        goal = read_term("p(a3)")
        miss = crs.retrieve(goal, mode=SearchMode.FS2_ONLY)
        hit = crs.retrieve(goal, mode=SearchMode.FS2_ONLY)
        assert miss.stats is not None and hit.stats is not None
        # Logical volumes survive the cached view...
        assert hit.stats.clauses_total == miss.stats.clauses_total
        assert hit.stats.final_candidates == miss.stats.final_candidates
        assert hit.stats.fs1_candidates == miss.stats.fs1_candidates
        assert hit.stats.mode == miss.stats.mode
        # ...but no physical work is charged to a hit.
        assert hit.stats.disk_time_s == 0.0
        assert hit.stats.fs1_time_s == 0.0
        assert hit.stats.fs2_time_s == 0.0
        assert hit.stats.software_time_s == 0.0
        assert hit.stats.bytes_from_disk == 0
        assert hit.stats.fs2_search_calls == 0
        assert hit.stats.filter_time_s == 0.0
        # The view is a copy: mutating it cannot corrupt the cache.
        hit.candidates.clear()
        assert len(crs.retrieve(goal, mode=SearchMode.FS2_ONLY)) == len(miss)

    def test_machine_with_cached_crs(self):
        kb = make_kb()
        kb.consult_text("q(X) :- p(X), p(X).")  # p retrieved twice per solve
        crs = ClauseRetrievalServer(kb, cache_size=32)
        machine = PrologMachine(kb, crs=crs)
        assert machine.count_solutions("q(a7)") == 1
        assert crs.cache_hits >= 1


class TestCanonicalGoalKey:
    """Regression tests for the shared canonical goal key (repro.crs.keys).

    The key is used both as the retrieval cache identity and as the shard
    router's goal identity; the string-rendered predecessor could be fooled
    by spelling (a quoted atom that *looks* like a renamed variable) and
    made p(X, Y) and p(X, X) ambiguous under renaming.
    """

    def test_shared_vs_distinct_variables_never_collide(self):
        from repro.crs import canonical_goal_key

        shared = canonical_goal_key(read_term("p(X, X)"))
        distinct = canonical_goal_key(read_term("p(X, Y)"))
        assert shared != distinct
        # ...and renaming cannot make them collide either.
        assert shared == canonical_goal_key(read_term("p(Q, Q)"))
        assert distinct == canonical_goal_key(read_term("p(A, B)"))

    def test_quoted_atom_cannot_spoof_a_variable(self):
        from repro.crs import canonical_goal_key

        atom_goal = read_term("p('_v0', '_v0')")
        var_goal = read_term("p(X, X)")
        assert canonical_goal_key(atom_goal) != canonical_goal_key(var_goal)

    def test_int_and_float_keys_distinct(self):
        from repro.crs import canonical_goal_key

        assert canonical_goal_key(read_term("p(1)")) != canonical_goal_key(
            read_term("p(1.0)")
        )

    def test_negative_zero_keys_like_positive_zero(self):
        from repro.crs import canonical_goal_key

        assert canonical_goal_key(read_term("p(-0.0)")) == canonical_goal_key(
            read_term("p(0.0)")
        )

    def test_routing_key_is_the_cache_key_for_ground_goals(self):
        from repro.cluster import ShardRouter, ShardingPolicy
        from repro.crs import canonical_goal_key

        router = ShardRouter(4, ShardingPolicy.FIRST_ARG)
        for text in ["p(a, b)", "p(f(g(1)), [x, y])", "p(1.5, 'q w')"]:
            goal = read_term(text)
            assert router.routing_key(goal) == canonical_goal_key(goal)

    def test_cache_separates_sharing_patterns_end_to_end(self):
        kb = KnowledgeBase()
        kb.consult_text("r(a, a). r(a, b).")
        crs = ClauseRetrievalServer(kb, cache_size=16)
        both = crs.retrieve(read_term("r(X, Y)"), mode=SearchMode.SOFTWARE)
        shared = crs.retrieve(read_term("r(X, X)"), mode=SearchMode.SOFTWARE)
        assert crs.cache_misses == 2 and crs.cache_hits == 0
        assert len(both) == 2
        # The shared-variable goal is a *different* retrieval; serving it
        # from r(X, Y)'s entry would be unsound for FS2-filtered modes.
        assert len(shared) >= 1
