"""Fault injection on the wire: flaky peers, corrupt frames, retries.

The client contract under faults: transport failures (connect refused,
connection dropped mid-stream, truncated response frames) and explicit
``SERVER_BUSY``/``SHUTTING_DOWN`` rejections are retried with capped
full-jitter backoff; protocol corruption (bad magic, oversized length
prefix) is *not* retried — the peer cannot be trusted — and surfaces as
:class:`ProtocolError`.  The server side mirrors it: a client that dies
mid-frame or declares an oversized payload costs the server one
connection, never the process.

The scripted server below plays one exact per-connection script, so
every fault fires deterministically; backoff randomness is pinned by an
injected ``random.Random`` seed and a recording fake ``sleep``.
"""

import random
import socket
import threading

import pytest

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.net import (
    BackgroundService,
    BackoffPolicy,
    DeadlineExceeded,
    ProtocolError,
    RetrievalClient,
    RetrievalService,
    ServerBusy,
)
from repro.net import protocol
from repro.net.protocol import ErrorCode, FrameType
from repro.obs import Instrumentation
from repro.terms import read_term


class ScriptedServer:
    """A raw TCP peer that plays one scripted handler per connection."""

    def __init__(self, *connection_scripts):
        self.scripts = list(connection_scripts)
        self.connections = 0
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(len(self.scripts) + 1)
        self.listener.settimeout(10.0)
        self.host, self.port = self.listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for script in self.scripts:
            try:
                conn, _ = self.listener.accept()
            except (OSError, socket.timeout):
                return
            self.connections += 1
            try:
                script(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        try:
            self.listener.close()
        except OSError:
            pass
        self._thread.join(timeout=10)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def read_request(conn) -> tuple[FrameType, int, bytes]:
    header = b""
    while len(header) < protocol.HEADER.size:
        chunk = conn.recv(protocol.HEADER.size - len(header))
        if not chunk:
            raise ConnectionError("client hung up")
        header += chunk
    frame_type, request_id, length = protocol.decode_header(header)
    payload = b""
    while len(payload) < length:
        payload += conn.recv(length - len(payload))
    return frame_type, request_id, payload


def drop_after_request(conn):
    """Read one request, then vanish before answering."""
    read_request(conn)


def truncated_pong(conn):
    """Read one request, answer with half a frame, then vanish."""
    _, request_id, _ = read_request(conn)
    frame = protocol.encode_frame(FrameType.RESP_PONG, request_id, b"")
    conn.sendall(frame[:6])


def garbage_response(conn):
    """Read one request, answer with a bad-magic header."""
    read_request(conn)
    conn.sendall(b"\xde\xad\xbe\xef" + b"\x00" * 8)


def oversized_response(conn):
    """Read one request, declare a payload far past the frame limit."""
    read_request(conn)
    conn.sendall(
        protocol.HEADER.pack(
            protocol.MAGIC, protocol.VERSION, int(FrameType.RESP_PONG),
            1, protocol.DEFAULT_MAX_FRAME_BYTES + 1,
        )
    )


def pong(conn):
    """Answer one request correctly."""
    _, request_id, _ = read_request(conn)
    conn.sendall(protocol.encode_frame(FrameType.RESP_PONG, request_id, b""))


def busy_busy_pong(conn):
    """One connection: reject twice with SERVER_BUSY, then answer."""
    for _ in range(2):
        _, request_id, _ = read_request(conn)
        conn.sendall(
            protocol.encode_frame(
                FrameType.RESP_ERROR, request_id,
                protocol.encode_error(ErrorCode.SERVER_BUSY, "full"),
            )
        )
    pong(conn)


def always_busy(conn):
    try:
        while True:
            _, request_id, _ = read_request(conn)
            conn.sendall(
                protocol.encode_frame(
                    FrameType.RESP_ERROR, request_id,
                    protocol.encode_error(ErrorCode.SERVER_BUSY, "full"),
                )
            )
    except (ConnectionError, OSError):
        pass


class TestClientRetries:
    def test_dropped_connection_mid_stream_is_retried(self):
        with ScriptedServer(drop_after_request, pong) as server:
            with RetrievalClient(server.host, server.port, sleep=lambda s: None) as client:
                assert client.ping() is True
            assert server.connections == 2  # one dropped, one succeeded

    def test_truncated_response_frame_is_retried(self):
        with ScriptedServer(truncated_pong, pong) as server:
            with RetrievalClient(server.host, server.port, sleep=lambda s: None) as client:
                assert client.ping() is True
            assert server.connections == 2

    def test_bad_magic_is_not_retried(self):
        # A peer that breaks framing cannot be trusted; fail loudly.
        with ScriptedServer(garbage_response) as server:
            with RetrievalClient(server.host, server.port, sleep=lambda s: None) as client:
                with pytest.raises(ProtocolError, match="magic"):
                    client.ping()
            assert server.connections == 1

    def test_oversized_length_prefix_is_not_retried(self):
        with ScriptedServer(oversized_response) as server:
            with RetrievalClient(server.host, server.port, sleep=lambda s: None) as client:
                with pytest.raises(ProtocolError, match="frame limit"):
                    client.ping()
            assert server.connections == 1

    def test_server_busy_retried_on_same_connection(self):
        obs = Instrumentation()
        slept = []
        with ScriptedServer(busy_busy_pong) as server:
            client = RetrievalClient(
                server.host, server.port,
                sleep=slept.append, rng=random.Random(7), obs=obs,
            )
            with client:
                assert client.ping() is True
            # A SERVER_BUSY answer proves the connection is healthy:
            # all three attempts must ride the same socket.
            assert server.connections == 1
        assert len(slept) == 2
        assert obs.registry.total("net.client.busy_retries") == 2
        assert obs.registry.total("net.client.retries") == 2

    def test_retries_exhaust_to_server_busy(self):
        with ScriptedServer(always_busy) as server:
            client = RetrievalClient(
                server.host, server.port,
                backoff=BackoffPolicy(max_retries=3),
                sleep=lambda s: None,
            )
            with client:
                with pytest.raises(ServerBusy):
                    client.ping()

    def test_connect_refused_exhausts_to_connect_error(self):
        from repro.net import ConnectError

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        client = RetrievalClient(
            "127.0.0.1", port,
            backoff=BackoffPolicy(max_retries=1), sleep=lambda s: None,
            connect_timeout_s=0.5,
        )
        with client, pytest.raises(ConnectError):
            client.ping()

    def test_deadline_bounds_busy_retries(self):
        # An always-busy server with a generous retry cap: the request
        # budget, not the retry count, ends the loop.
        with ScriptedServer(always_busy) as server:
            client = RetrievalClient(
                server.host, server.port,
                backoff=BackoffPolicy(max_retries=10_000, base_s=0.01),
            )
            with client:
                with pytest.raises(DeadlineExceeded):
                    client.retrieve(
                        read_term("p(X)"), deadline_s=0.08
                    )


class TestBackoffPolicy:
    def test_full_jitter_is_deterministic_under_seed(self):
        policy = BackoffPolicy(base_s=0.02, multiplier=2.0, cap_s=0.5)
        first = [policy.delay(n, random.Random(99)) for n in range(6)]
        second = [policy.delay(n, random.Random(99)) for n in range(6)]
        assert first == second

    def test_delays_respect_the_exponential_cap(self):
        policy = BackoffPolicy(base_s=0.02, multiplier=2.0, cap_s=0.1)
        rng = random.Random(3)
        for attempt in range(12):
            ceiling = min(0.1, 0.02 * 2.0**attempt)
            for _ in range(50):
                assert 0.0 <= policy.delay(attempt, rng) <= ceiling

    def test_recorded_sleeps_match_the_seeded_sequence(self):
        slept = []
        with ScriptedServer(busy_busy_pong) as server:
            client = RetrievalClient(
                server.host, server.port,
                sleep=slept.append, rng=random.Random(1234),
            )
            with client:
                client.ping()
        policy = BackoffPolicy()
        expected_rng = random.Random(1234)
        expected = [policy.delay(n, expected_rng) for n in range(2)]
        assert slept == expected


class TestServerSideFaults:
    """The real service survives hostile and dying clients."""

    @pytest.fixture
    def live_service(self):
        engine = ShardedRetrievalServer(2, ShardingPolicy.FIRST_ARG)
        engine.consult_text("p(a). p(b). p(c).")
        obs = Instrumentation()
        service = RetrievalService(engine, obs=obs)
        with BackgroundService(service) as background:
            host, port = background.start()
            yield host, port, obs

    def test_client_dying_mid_frame_counts_truncated(self, live_service):
        host, port, obs = live_service
        raw = socket.create_connection((host, port))
        frame = protocol.encode_frame(
            FrameType.REQ_RETRIEVE, 1,
            protocol.encode_retrieve_request(read_term("p(X)")),
        )
        raw.sendall(frame[: len(frame) // 2])  # header + partial payload
        raw.close()
        # The service must shrug it off and keep answering others.
        with RetrievalClient(host, port) as client:
            assert len(client.retrieve(read_term("p(X)")).candidates) == 3
        assert obs.registry.total("net.truncated_frames") == 1

    def test_oversized_request_gets_bad_request_then_hangup(self, live_service):
        host, port, obs = live_service
        raw = socket.create_connection((host, port))
        raw.sendall(
            protocol.HEADER.pack(
                protocol.MAGIC, protocol.VERSION,
                int(FrameType.REQ_RETRIEVE), 9,
                protocol.DEFAULT_MAX_FRAME_BYTES + 1,
            )
        )
        header = raw.recv(protocol.HEADER.size)
        frame_type, _, length = protocol.decode_header(header)
        assert frame_type is FrameType.RESP_ERROR
        payload = raw.recv(length)
        code, message = protocol.decode_error(payload)
        assert code is ErrorCode.BAD_REQUEST
        assert "frame limit" in message
        assert raw.recv(1) == b""  # server hung up after the error
        raw.close()
        assert obs.registry.total("net.bad_frames") == 1
        # The listener is still healthy.
        with RetrievalClient(host, port) as client:
            assert client.ping() is True

    def test_bad_magic_request_drops_connection(self, live_service):
        host, port, obs = live_service
        raw = socket.create_connection((host, port))
        raw.sendall(b"\x00" * protocol.HEADER.size)
        header = raw.recv(protocol.HEADER.size)
        frame_type, _, length = protocol.decode_header(header)
        assert frame_type is FrameType.RESP_ERROR
        code, _ = protocol.decode_error(raw.recv(length))
        assert code is ErrorCode.BAD_REQUEST
        assert raw.recv(1) == b""
        raw.close()
        assert obs.registry.total("net.bad_frames") == 1
