"""Tests for the PIF dump tool."""

from repro.pif import PIFEncoder, SymbolTable, compile_clause
from repro.pif.dump import describe_item, dump_record, dump_stream
from repro.pif.decoder import scan_items
from repro.terms import clause_from_term, read_term


def encoded(text, side="db"):
    symbols = SymbolTable()
    encoder = PIFEncoder(symbols, side=side)
    return encoder.encode_head(read_term(text)), symbols


class TestDescribeItem:
    def test_integer(self):
        enc, symbols = encoded("p(-5)")
        item = scan_items(enc.stream)[0]
        text = describe_item(item, symbols)
        assert "Integer" in text
        assert "value -5" in text

    def test_atom_with_symbols(self):
        enc, symbols = encoded("p(hello)")
        item = scan_items(enc.stream)[0]
        text = describe_item(item, symbols)
        assert "Atom Pointer" in text
        assert "'hello'" in text

    def test_atom_without_symbols(self):
        enc, symbols = encoded("p(hello)")
        item = scan_items(enc.stream)[0]
        assert "symbol #" in describe_item(item, None)

    def test_variable_slot(self):
        enc, symbols = encoded("p(X, X)")
        items = scan_items(enc.stream)
        assert "First DB Var" in describe_item(items[0])
        assert "slot 0" in describe_item(items[0])
        assert "Subsequent DB Var" in describe_item(items[1])

    def test_query_side_tags(self):
        enc, symbols = encoded("p(X)", side="query")
        item = scan_items(enc.stream)[0]
        assert "Query Var" in describe_item(item)

    def test_pointer_extension(self):
        args = ", ".join(str(i) for i in range(40))
        enc, symbols = encoded(f"p(big({args}))")
        item = scan_items(enc.stream)[0]
        assert "heap +" in describe_item(item, symbols)


class TestDumpStream:
    def test_nesting_indentation(self):
        enc, symbols = encoded("p(f(a, b), c)")
        lines = dump_stream(enc.stream, symbols)
        assert len(lines) == 4  # f item, a, b, c
        assert lines[0].startswith("0x")  # depth 0
        assert lines[1].startswith("  ")  # elements indented
        assert lines[2].startswith("  ")
        assert not lines[3].startswith("  ")  # back at top level

    def test_list_with_tail(self):
        enc, symbols = encoded("p([1 | T])")
        lines = dump_stream(enc.stream, symbols)
        assert "List" in lines[0]
        assert len(lines) == 3  # list item, element, tail var


class TestDumpRecord:
    def test_fact(self):
        symbols = SymbolTable()
        record = compile_clause(clause_from_term(read_term("p(a, X)")), symbols)
        lines = dump_record(record, symbols)
        assert lines[0] == "clause p/2 (fact)"
        assert any("Atom Pointer" in line for line in lines)
        assert any("variables: X" in line for line in lines)

    def test_rule_shows_body(self):
        symbols = SymbolTable()
        record = compile_clause(
            clause_from_term(read_term("p(X) :- q(X), r(X)")), symbols
        )
        lines = dump_record(record, symbols)
        assert lines[0] == "clause p/1 (rule)"
        assert "body:" in lines
