"""Tests for the command-line driver."""

import io

import pytest

from repro.cli import main


def run(argv) -> str:
    out = io.StringIO()
    assert main(argv, out=out) == 0
    return out.getvalue()


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "family.pl"
    path.write_text(
        "parent(tom, bob). parent(bob, ann).\n"
        "grand(X, Z) :- parent(X, Y), parent(Y, Z).\n"
    )
    return str(path)


class TestTable1Command:
    def test_prints_all_rows(self):
        output = run(["table1"])
        for op in (
            "MATCH",
            "DB_STORE",
            "QUERY_STORE",
            "DB_FETCH",
            "QUERY_FETCH",
            "DB_CROSS_BOUND_FETCH",
            "QUERY_CROSS_BOUND_FETCH",
        ):
            assert op in output
        assert "235 ns" in output
        assert "4.26 Mbytes" in output


class TestMicrocodeCommand:
    def test_disassembly(self):
        output = run(["microcode"])
        assert "POLL" in output
        assert "JMAP" in output
        assert "SIGNAL_HIT" in output
        assert "CJP !HIT -> FAIL_EXIT" in output


class TestGoalCommand:
    def test_arithmetic(self):
        assert "X = 42" in run(["goal", "X is 6 * 7"])

    def test_failure(self):
        assert "false" in run(["goal", "1 = 2"])

    def test_no_variables_prints_true(self):
        assert "true" in run(["goal", "atom(foo)"])

    def test_solution_limit(self):
        output = run(["goal", "between(1, 100, X)", "--max-solutions", "3"])
        assert output.count("X = ") == 3
        assert "limit reached" in output


class TestConsultCommand:
    def test_consult_and_query(self, program_file):
        output = run(["consult", program_file, "--goal", "grand(tom, W)"])
        assert "consulted 3 clauses" in output
        assert "W = ann" in output
        assert "[stats]" in output

    def test_disk_pinning(self, program_file):
        output = run(
            ["consult", program_file, "--disk", "--goal", "parent(tom, X)"]
        )
        assert "pinned to the simulated disk" in output
        assert "X = bob" in output

    def test_forced_mode(self, program_file):
        output = run(
            [
                "consult",
                program_file,
                "--disk",
                "--mode",
                "fs2",
                "--goal",
                "parent(X, Y)",
            ]
        )
        assert "fs2" in output

    def test_library_flag(self, program_file):
        output = run(
            [
                "consult",
                program_file,
                "--library",
                "--goal",
                "append([1], [2], L)",
            ]
        )
        assert "L = [1,2]" in output

    def test_no_goals(self, program_file):
        output = run(["consult", program_file])
        assert "consulted" in output
        assert "[stats]" not in output


class TestStatsCommand:
    def test_prints_registry(self, program_file):
        output = run(
            ["stats", program_file, "--goal", "parent(tom, X)", "--disk"]
        )
        assert "pipeline metrics" in output
        assert "retrievals=" in output
        assert "cache hits/misses=" in output
        assert "lock waits=" in output
        assert "fs2 search calls=" in output
        assert "stage sim time (s):" in output
        assert "registry:" in output
        assert "crs.retrievals" in output

    def test_cache_flag_counts_hits(self, program_file):
        output = run(
            [
                "stats",
                program_file,
                "--goal",
                "grand(tom, Z)",
                "--goal",
                "grand(tom, Z)",
                "--cache",
                "16",
            ]
        )
        assert "crs.cache.hits" in output

    def test_trace_json_export(self, program_file, tmp_path):
        import json

        trace = tmp_path / "trace.ndjson"
        output = run(
            [
                "stats",
                program_file,
                "--goal",
                "parent(tom, X)",
                "--disk",
                "--trace-json",
                str(trace),
            ]
        )
        assert f"spans to {trace}" in output
        spans = [json.loads(line) for line in trace.read_text().splitlines()]
        assert spans
        names = {span["name"] for span in spans}
        assert "crs.retrieve" in names
        assert "engine.retrieve" in names

    def test_consult_trace_json(self, program_file, tmp_path):
        # --trace-json alone turns instrumentation on for plain consult.
        trace = tmp_path / "trace.ndjson"
        output = run(
            [
                "consult",
                program_file,
                "--goal",
                "parent(tom, X)",
                "--trace-json",
                str(trace),
            ]
        )
        assert "wrote" in output and "spans" in output
        assert trace.exists()


class TestDumpCommand:
    def test_dump_fact(self):
        output = run(["dump", "p(a, X, [1, 2])"])
        assert "clause p/3 (fact)" in output
        assert "Atom Pointer" in output
        assert "First DB Var" in output
        assert "Terminated List In-line" in output
        assert "record size:" in output

    def test_dump_rule(self):
        output = run(["dump", "q(X) :- p(X)"])
        assert "clause q/1 (rule)" in output
        assert "body:" in output


class TestShardedCommands:
    @pytest.fixture
    def facts_file(self, tmp_path):
        path = tmp_path / "facts.pl"
        path.write_text(
            " ".join(f"parent(p{i}, c{i})." for i in range(20))
            + "\nparent(X, orphan).\n"
        )
        return str(path)

    def test_consult_with_shards_reports_balance(self, facts_file):
        output = run(
            ["consult", facts_file, "--shards", "3", "--goal", "parent(p3, X)"]
        )
        assert "into 3 shards (policy=predicate)" in output
        assert "X = c3" in output
        assert "[batch] goals=1" in output

    def test_shard_by_first_arg_broadcast_goal(self, facts_file):
        output = run(
            [
                "consult", facts_file,
                "--shards", "4", "--shard-by", "first_arg",
                "--goal", "parent(W, W)",
            ]
        )
        # Only the catch-all parent(X, orphan) head unifies with W=W... the
        # shared-variable goal must broadcast and still find it.
        assert "W = orphan" in output

    def test_sharded_goal_with_no_solutions_prints_false(self, facts_file):
        output = run(
            ["consult", facts_file, "--shards", "2", "--goal", "parent(zz, yy)"]
        )
        assert "false" in output

    def test_sharded_stats_prints_shard_breakdown(self, facts_file):
        output = run(
            [
                "stats", facts_file,
                "--shards", "3", "--shard-by", "round_robin",
                "--goal", "parent(p1, X)", "--goal", "parent(p1, X)",
                "--cache", "8",
            ]
        )
        assert "shard breakdown" in output
        assert "pipeline metrics" in output
        assert "[batch]" in output
        # Round-robin broadcasts: the routing summary line must show it.
        assert "broadcast" in output

    def test_sharded_disk_pinning(self, facts_file):
        output = run(
            [
                "consult", facts_file, "--shards", "2", "--disk",
                "--goal", "parent(p7, X)",
            ]
        )
        assert "pinned to the simulated disks" in output
        assert "X = c7" in output

    def test_sharded_forced_mode(self, facts_file):
        output = run(
            [
                "consult", facts_file, "--shards", "2",
                "--mode", "fs1", "--goal", "parent(p2, X)",
            ]
        )
        assert "X = c2" in output


class TestNetCommands:
    """`serve`, `client` and `loadgen` wired together over loopback."""

    def serve_in_background(self, program_file, extra_args=()):
        import re
        import threading
        import time

        out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=(
                ["serve", program_file, "--shards", "2", *extra_args],
            ),
            kwargs={"out": out},
            daemon=True,
        )
        thread.start()
        port = None
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            match = re.search(r"serving on 127\.0\.0\.1:(\d+)", out.getvalue())
            if match:
                port = int(match.group(1))
                break
            time.sleep(0.02)
        assert port is not None, out.getvalue()
        return out, thread, port

    def test_serve_client_roundtrip_and_net_counters(self, program_file):
        out, thread, port = self.serve_in_background(
            program_file, extra_args=["--max-requests", "3"]
        )
        client_out = io.StringIO()
        code = main(
            ["client", "--port", str(port), "--goal", "parent(tom, X)",
             "--goal", "grand(A, B)", "--server-stats"],
            out=client_out,
        )
        assert code == 0
        text = client_out.getvalue()
        assert "parent(tom,bob)." in text
        assert "mode=" in text
        assert "[server]" in text and "engine_clauses=3" in text

        # One more request reaches --max-requests and drains the server.
        main(["client", "--port", str(port), "--goal", "parent(bob, X)"],
             out=io.StringIO())
        thread.join(timeout=20)
        assert not thread.is_alive(), "serve did not drain at --max-requests"
        served = out.getvalue()
        assert "net serving" in served
        assert "accepted=3" in served
        assert "busy_rejected=0" in served
        assert "drains=1" in served

    def test_client_ping_without_goals(self, program_file):
        out, thread, port = self.serve_in_background(
            program_file, extra_args=["--max-requests", "2"]
        )
        ping_out = io.StringIO()
        assert main(["client", "--port", str(port)], out=ping_out) == 0
        assert ping_out.getvalue() == "pong\n"
        # Pings are not admitted requests; finish the server off.
        main(["client", "--port", str(port), "--goal", "parent(tom, X)"],
             out=io.StringIO())
        main(["client", "--port", str(port), "--goal", "parent(tom, X)"],
             out=io.StringIO())
        thread.join(timeout=20)
        assert not thread.is_alive()

    def test_client_error_exit_code(self):
        import socket

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        out = io.StringIO()
        code = main(
            ["client", "--port", str(port), "--goal", "p(X)"], out=out
        )
        assert code == 1
        assert out.getvalue().startswith("error:")

    def test_loadgen_summary(self, program_file):
        out, thread, port = self.serve_in_background(
            program_file, extra_args=["--max-requests", "10"]
        )
        lg_out = io.StringIO()
        code = main(
            ["loadgen", "--port", str(port), "--goal", "parent(tom, X)",
             "--qps", "100", "--duration-s", "0.1"],
            out=lg_out,
        )
        assert code == 0
        summary = lg_out.getvalue()
        assert summary.startswith("[loadgen] offered=10 ok=10")
        assert "p99=" in summary
        thread.join(timeout=20)
        assert not thread.is_alive()

    def test_client_assert_retract_and_manifest(self, program_file):
        out, thread, port = self.serve_in_background(
            program_file, extra_args=["--max-requests", "4"]
        )
        mutate_out = io.StringIO()
        code = main(
            ["client", "--port", str(port),
             "--assert", "parent(zeus, ares)", "--manifest"],
            out=mutate_out,
        )
        assert code == 0
        text = mutate_out.getvalue()
        assert "asserted parent(zeus, ares) (version" in text
        # The serve instance publishes itself as a one-node cluster.
        assert '"num_shards": 1' in text
        assert f"127.0.0.1:{port}" in text

        read_out = io.StringIO()
        main(["client", "--port", str(port), "--goal", "parent(zeus, X)"],
             out=read_out)
        assert "parent(zeus,ares)." in read_out.getvalue()

        retract_out = io.StringIO()
        main(["client", "--port", str(port),
              "--retract", "parent(zeus, ares)"], out=retract_out)
        assert "retracted parent(zeus,ares). (version" in retract_out.getvalue()

        again = io.StringIO()
        main(["client", "--port", str(port),
              "--retract", "parent(zeus, ares)"], out=again)
        assert "retract parent(zeus, ares): false" in again.getvalue()
        thread.join(timeout=20)
        assert not thread.is_alive()
