"""Tests for the CRS search modes, including the mode-equivalence invariant."""

import pytest

from repro.crs import ClauseRetrievalServer, SearchMode, select_mode
from repro.storage import KnowledgeBase, Residency
from repro.terms import read_term
from repro.workloads import (
    FactKBSpec,
    generate_couples,
    generate_facts,
    ground_query_for,
    open_query,
    shared_variable_query,
)

ALL_MODES = list(SearchMode)


@pytest.fixture(scope="module")
def fact_kb():
    kb = KnowledgeBase()
    clauses = generate_facts(
        FactKBSpec(functor="rec", arity=3, count=300, seed=7)
    )
    kb.consult_clauses(clauses, module="data")
    kb.module("data").pin(Residency.DISK)
    kb.sync_to_disk()
    return kb


@pytest.fixture(scope="module")
def couples_kb():
    kb = KnowledgeBase()
    kb.consult_clauses(
        generate_couples(count=200, same_surname_fraction=0.1, seed=3),
        module="data",
    )
    kb.module("data").pin(Residency.DISK)
    kb.sync_to_disk()
    return kb


class TestModeCandidates:
    def test_all_modes_find_the_answer(self, fact_kb):
        crs = ClauseRetrievalServer(fact_kb)
        query = ground_query_for(fact_kb.clauses(("rec", 3)), seed=1)
        for mode in ALL_MODES:
            result = crs.retrieve(query, mode=mode)
            assert any(
                clause.head == query for clause in result.candidates
            ), f"mode {mode} lost the exact-match clause"

    def test_mode_equivalence_final_answers(self, fact_kb):
        """All four modes yield the same resolvent set after unification."""
        crs = ClauseRetrievalServer(fact_kb)
        for seed in range(5):
            query = ground_query_for(
                fact_kb.clauses(("rec", 3)), seed=seed, bound_arguments=2
            )
            reference = None
            for mode in ALL_MODES:
                answers = {
                    str(clause) for clause, _ in crs.solutions(query, mode=mode)
                }
                if reference is None:
                    reference = answers
                else:
                    assert answers == reference, f"mode {mode} diverged"

    def test_filters_reduce_candidates(self, fact_kb):
        crs = ClauseRetrievalServer(fact_kb)
        query = ground_query_for(fact_kb.clauses(("rec", 3)), seed=2)
        software = crs.retrieve(query, mode=SearchMode.SOFTWARE)
        fs1 = crs.retrieve(query, mode=SearchMode.FS1_ONLY)
        both = crs.retrieve(query, mode=SearchMode.BOTH)
        total = software.stats.clauses_total
        assert len(fs1) < total
        assert len(both) <= len(fs1)

    def test_fs2_candidates_subset_of_fs1(self, fact_kb):
        crs = ClauseRetrievalServer(fact_kb)
        query = ground_query_for(fact_kb.clauses(("rec", 3)), seed=3)
        fs1 = {str(c) for c in crs.retrieve(query, mode=SearchMode.FS1_ONLY).candidates}
        both = {str(c) for c in crs.retrieve(query, mode=SearchMode.BOTH).candidates}
        assert both <= fs1

    def test_shared_variable_query_fs1_blind(self, couples_kb):
        """married_couple(S,S): FS1 retrieves everything, FS2 filters."""
        crs = ClauseRetrievalServer(couples_kb)
        query = shared_variable_query("married_couple")
        fs1 = crs.retrieve(query, mode=SearchMode.FS1_ONLY)
        fs2 = crs.retrieve(query, mode=SearchMode.FS2_ONLY)
        assert len(fs1) == fs1.stats.clauses_total  # total false-drop blow-up
        assert len(fs2) < len(fs1)
        # FS2's candidates are exactly the same-surname couples.
        answers = crs.solutions(query, mode=SearchMode.FS2_ONLY)
        assert len(fs2) == len(answers)

    def test_rules_survive_every_mode(self):
        kb = KnowledgeBase()
        kb.consult_text(
            "anc(X, Y) :- parent(X, Y). anc(tom, X) :- special(X). "
            "anc(a, b). anc(c, d)."
        )
        kb.module("user").pin(Residency.DISK)
        kb.sync_to_disk()
        crs = ClauseRetrievalServer(kb)
        for mode in ALL_MODES:
            result = crs.retrieve(read_term("anc(tom, X)"), mode=mode)
            kept = {str(c.head) for c in result.candidates}
            assert "anc(X,Y)" in kept
            assert "anc(tom,X)" in kept


class TestStats:
    def test_software_stats(self, fact_kb):
        crs = ClauseRetrievalServer(fact_kb)
        query = ground_query_for(fact_kb.clauses(("rec", 3)), seed=4)
        stats = crs.retrieve(query, mode=SearchMode.SOFTWARE).stats
        assert stats.clauses_total == 300
        assert stats.software_time_s > 0
        assert stats.disk_time_s > 0  # disk resident: full file read
        assert stats.filter_time_s >= stats.software_time_s

    def test_fs1_stats(self, fact_kb):
        crs = ClauseRetrievalServer(fact_kb)
        query = ground_query_for(fact_kb.clauses(("rec", 3)), seed=5)
        stats = crs.retrieve(query, mode=SearchMode.FS1_ONLY).stats
        assert stats.fs1_candidates is not None
        assert stats.fs1_time_s > 0
        assert stats.software_time_s == 0

    def test_fs2_stats(self, fact_kb):
        crs = ClauseRetrievalServer(fact_kb)
        query = ground_query_for(fact_kb.clauses(("rec", 3)), seed=6)
        stats = crs.retrieve(query, mode=SearchMode.FS2_ONLY).stats
        assert stats.fs2_time_s > 0
        assert stats.fs2_search_calls >= 1
        assert stats.selectivity <= 1.0

    def test_memory_resident_no_disk_time(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a). p(b).")
        crs = ClauseRetrievalServer(kb)
        stats = crs.retrieve(read_term("p(a)"), mode=SearchMode.SOFTWARE).stats
        assert stats.disk_time_s == 0
        assert stats.residency == Residency.MEMORY

    def test_hardware_modes_outpace_software_on_large_kb(self):
        """The modelled times must show CLARE's advantage (who-wins).

        On tiny predicates fixed seek costs dominate and software wins
        (that is why the planner keeps them in software); the hardware
        advantage must emerge at scale.
        """
        kb = KnowledgeBase()
        clauses = generate_facts(
            FactKBSpec(functor="big", arity=3, count=3000, seed=11)
        )
        kb.consult_clauses(clauses, module="data")
        kb.module("data").pin(Residency.DISK)
        kb.sync_to_disk()
        crs = ClauseRetrievalServer(kb)
        query = ground_query_for(clauses, seed=7)
        software = crs.retrieve(query, mode=SearchMode.SOFTWARE).stats
        both = crs.retrieve(query, mode=SearchMode.BOTH).stats
        assert both.filter_time_s < software.filter_time_s


class TestResultMemoryOverflow:
    """The 64-satisfier Result Memory limit, end to end."""

    def overflow_kb(self, count=150):
        # Every record matches the open query: one raw search call over
        # the whole predicate would capture more satisfiers than the
        # 6-bit counter allows.
        kb = KnowledgeBase()
        kb.consult_text(
            " ".join(f"hot(k{n}, v). " for n in range(count)), module="data"
        )
        kb.module("data").pin(Residency.DISK)
        kb.sync_to_disk()
        return kb

    def test_streaming_batches_avoid_overflow(self):
        from repro.fs2 import MAX_SATISFIERS

        kb = self.overflow_kb(150)
        crs = ClauseRetrievalServer(kb)
        result = crs.retrieve(read_term("hot(K, V)"), mode=SearchMode.FS2_ONLY)
        assert len(result) == 150  # nothing dropped
        assert result.stats.fs2_search_calls >= -(-150 // MAX_SATISFIERS)

    def test_both_mode_survives_all_matching_track(self):
        kb = self.overflow_kb(150)
        crs = ClauseRetrievalServer(kb)
        result = crs.retrieve(read_term("hot(K, V)"), mode=SearchMode.BOTH)
        assert len(result) == 150
        assert result.stats.fs2_search_calls >= 3

    def test_raw_search_call_overflows(self):
        # The hardware limit is real: bypass the CRS batching and feed
        # one oversized call straight to FS2.
        from repro.fs2 import MAX_SATISFIERS, ResultMemoryFull, SecondStageFilter

        kb = self.overflow_kb(MAX_SATISFIERS + 1)
        store = kb.store(("hot", 2))
        records = [
            store.clause_file.record_bytes(position)
            for position in range(len(store.clause_file))
        ]
        fs2 = SecondStageFilter(kb.symbols)
        fs2.load_microprogram()
        fs2.set_query(read_term("hot(K, V)"))
        with pytest.raises(ResultMemoryFull):
            fs2.search(records, indicator=("hot", 2))


class TestSelectiveFetchCost:
    def test_fetch_does_not_reserialise_the_file(self, fact_kb, monkeypatch):
        """FS1's selective fetch is O(candidates), not O(predicate).

        The address table is maintained incrementally by the clause
        file, so a retrieval must not call ``CompiledClause.to_bytes``
        at all — the old code re-serialised all 300 records per call.
        """
        from repro.pif.clausefile import CompiledClause

        crs = ClauseRetrievalServer(fact_kb)
        query = ground_query_for(fact_kb.clauses(("rec", 3)), seed=2)
        calls = 0
        original = CompiledClause.to_bytes

        def counting(self, include_names=True):
            nonlocal calls
            calls += 1
            return original(self, include_names)

        monkeypatch.setattr(CompiledClause, "to_bytes", counting)
        result = crs.retrieve(query, mode=SearchMode.FS1_ONLY)
        assert len(result) >= 1
        assert calls == 0


class TestPlanner:
    def kb_with(self, texts, pin=Residency.DISK, module="data"):
        kb = KnowledgeBase()
        kb.consult_text(" ".join(texts), module=module)
        kb.module(module).pin(pin)
        return kb

    def test_small_predicate_software(self):
        kb = self.kb_with(["p(a).", "p(b)."])
        mode = select_mode(
            read_term("p(a)"), kb.store(("p", 1)), kb.residency(("p", 1))
        )
        assert mode == SearchMode.SOFTWARE

    def test_memory_resident_software(self):
        kb = self.kb_with(
            [f"p(a{i})." for i in range(100)], pin=Residency.MEMORY
        )
        mode = select_mode(
            read_term("p(a1)"), kb.store(("p", 1)), Residency.MEMORY
        )
        assert mode == SearchMode.SOFTWARE

    def test_ground_query_fact_kb_fs1(self):
        kb = self.kb_with([f"p(a{i})." for i in range(100)])
        mode = select_mode(
            read_term("p(a5)"), kb.store(("p", 1)), Residency.DISK
        )
        assert mode == SearchMode.FS1_ONLY

    def test_shared_variables_force_fs2(self):
        kb = self.kb_with([f"p(a{i}, b{i})." for i in range(100)])
        store = kb.store(("p", 2))
        pure_shared = shared_variable_query("p")
        assert select_mode(pure_shared, store, Residency.DISK) == SearchMode.FS2_ONLY

    def test_shared_plus_constants_both(self):
        kb = self.kb_with([f"p(a{i}, b{i}, c)." for i in range(100)])
        store = kb.store(("p", 3))
        query = read_term("p(S, S, c)")
        assert select_mode(query, store, Residency.DISK) == SearchMode.BOTH

    def test_open_query_software(self):
        kb = self.kb_with([f"p(a{i})." for i in range(100)])
        mode = select_mode(
            open_query("p", 1), kb.store(("p", 1)), Residency.DISK
        )
        assert mode == SearchMode.SOFTWARE

    def test_partial_query_rule_kb_both(self):
        kb = self.kb_with(
            [f"p(a{i}, b{i}) :- q(a{i})." for i in range(50)]
            + [f"p(c{i}, d{i})." for i in range(50)]
        )
        mode = select_mode(
            read_term("p(a1, X)"), kb.store(("p", 2)), Residency.DISK
        )
        assert mode == SearchMode.BOTH

    def test_machine_uses_planner(self):
        from repro.engine import PrologMachine

        kb = self.kb_with([f"p(a{i})." for i in range(100)])
        kb.sync_to_disk()
        machine = PrologMachine(kb)
        assert machine.succeeds("p(a5)")
        assert SearchMode.FS1_ONLY in machine.stats.mode_uses
