"""Integration and property tests for the FS2 engine.

The crown-jewel invariants:

* the microcoded simulator agrees with the software level-3+cross-binding
  oracle on every clause — both the hit/miss decision and the hardware
  operation counts;
* the filter never drops a clause that fully unifies with the query.
"""

from collections import Counter

import pytest
from hypothesis import given, settings

from repro.fs2 import (
    FS2ProtocolError,
    OperationalMode,
    SecondStageFilter,
)
from repro.pif import (
    ClauseFile,
    CompiledClause,
    PIFDecoder,
    PIFError,
    SymbolTable,
    compile_clause,
)
from repro.terms import Clause, clause_from_term, read_term, rename_apart
from repro.unify import HardwareOp, PartialMatcher, unifiable
from tests.strategies import clause_heads


def make_kb(texts, indicator):
    symbols = SymbolTable()
    cf = ClauseFile(indicator, symbols)
    for text in texts:
        cf.append(clause_from_term(read_term(text)))
    return symbols, cf


def run_search(query_text, texts, indicator, cross_binding=True):
    symbols, cf = make_kb(texts, indicator)
    fs2 = SecondStageFilter(symbols, cross_binding=cross_binding)
    fs2.load_microprogram()
    fs2.set_query(read_term(query_text))
    records = [cf.record(i).to_bytes() for i in range(len(cf))]
    stats = fs2.search(records)
    decoder = PIFDecoder(symbols)
    hits = []
    for record in fs2.read_results():
        compiled, _ = CompiledClause.from_bytes(record, indicator)
        hits.append(str(decoder.decode_head(compiled.head_encoded)))
    return stats, hits


class TestSearchFlow:
    def test_ground_query_selects_exact(self):
        stats, hits = run_search(
            "p(a, b)",
            ["p(a, b)", "p(a, c)", "p(b, b)"],
            ("p", 2),
        )
        assert hits == ["p(a,b)"]
        assert stats.clauses_examined == 3
        assert stats.satisfiers == 1

    def test_variable_clauses_always_pass(self):
        stats, hits = run_search(
            "p(a)",
            ["p(X)", "p(b)", "p(a)"],
            ("p", 1),
        )
        assert hits == ["p(X)", "p(a)"]

    def test_query_variables_pass_everything(self):
        stats, hits = run_search("p(X)", ["p(a)", "p(b)"], ("p", 1))
        assert len(hits) == 2

    def test_shared_query_variable(self):
        # The married_couple query that defeats FS1 is exactly what FS2
        # exists to filter.
        stats, hits = run_search(
            "married(S, S)",
            ["married(smith, smith)", "married(smith, jones)", "married(X, X)"],
            ("married", 2),
        )
        assert hits == ["married(smith,smith)", "married(X,X)"]

    def test_cross_binding_checks(self):
        stats, hits = run_search(
            "f(X, b, X)",
            ["f(A, A, c)", "f(A, A, b)"],
            ("f", 3),
        )
        assert hits == ["f(A,A,b)"]

    def test_cross_binding_disabled_admits_more(self):
        stats, hits = run_search(
            "f(X, b, X)",
            ["f(A, A, c)", "f(A, A, b)"],
            ("f", 3),
            cross_binding=False,
        )
        assert len(hits) == 2  # the inconsistent clause becomes a false drop

    def test_structures_first_level(self):
        stats, hits = run_search(
            "p(f(a, g(1)))",
            ["p(f(a, g(2)))", "p(f(b, g(1)))", "p(f(a))"],
            ("p", 1),
        )
        # g(1) vs g(2) differ at depth 2: invisible to level 3.
        assert hits == ["p(f(a,g(2)))"]

    def test_lists_and_tails(self):
        stats, hits = run_search(
            "p([1, 2 | T])",
            ["p([1, 2, 3])", "p([1, 3, 3])", "p([1, 2])", "p([1 | X])"],
            ("p", 1),
        )
        assert hits == ["p([1,2,3])", "p([1,2])", "p([1|X])"]

    def test_rules_filtered_by_head(self):
        stats, hits = run_search(
            "anc(tom, X)",
            ["anc(A, B) :- parent(A, B)", "anc(dick, harry)", "anc(tom, jane)"],
            ("anc", 2),
        )
        assert hits == ["anc(A,B)", "anc(tom,jane)"]

    def test_atom_query(self):
        stats, hits = run_search("go", ["go", "go"], ("go", 0))
        assert stats.satisfiers == 2

    def test_match_found_bit(self):
        symbols, cf = make_kb(["p(a)"], ("p", 1))
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(read_term("p(zzz)"))
        fs2.search([cf.record(0).to_bytes()])
        assert not fs2.control.match_found
        fs2.set_query(read_term("p(a)"))
        fs2.search([cf.record(0).to_bytes()])
        assert fs2.control.match_found

    def test_mode_sequence(self):
        symbols, cf = make_kb(["p(a)"], ("p", 1))
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        assert fs2.control.mode == OperationalMode.MICROPROGRAMMING
        fs2.set_query(read_term("p(a)"))
        assert fs2.control.mode == OperationalMode.SET_QUERY
        fs2.search([cf.record(0).to_bytes()])
        assert fs2.control.mode == OperationalMode.SEARCH
        fs2.read_results()
        assert fs2.control.mode == OperationalMode.READ_RESULT

    def test_protocol_enforced(self):
        symbols = SymbolTable()
        fs2 = SecondStageFilter(symbols)
        with pytest.raises(FS2ProtocolError):
            fs2.set_query(read_term("p(a)"))
        fs2.load_microprogram()
        with pytest.raises(FS2ProtocolError):
            fs2.search([])

    def test_wrong_predicate_never_matches(self):
        symbols, cf = make_kb(["q(a)"], ("q", 1))
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(read_term("p(a)"))
        stats = fs2.search([cf.record(0).to_bytes()], indicator=("q", 1))
        assert stats.satisfiers == 0

    def test_stats_accounting(self):
        stats, _ = run_search("p(a, b)", ["p(a, b)", "p(x, y)"], ("p", 2))
        assert stats.clauses_examined == 2
        assert stats.bytes_streamed > 0
        assert stats.micro_cycles > 0
        assert stats.op_time_ns > 0
        assert stats.op_counts[HardwareOp.MATCH] >= 2
        assert stats.false_drop_candidates == 1

    def test_query_reuse_resets_state(self):
        symbols, cf = make_kb(["p(a)", "p(b)"], ("p", 1))
        records = [cf.record(i).to_bytes() for i in range(2)]
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(read_term("p(a)"))
        assert fs2.search(records).satisfiers == 1
        fs2.set_query(read_term("p(b)"))
        assert fs2.search(records).satisfiers == 1
        assert len(fs2.read_results()) == 1


class TestOpAccounting:
    def op_counts(self, query_text, clause_text):
        symbols = SymbolTable()
        compiled = compile_clause(
            clause_from_term(read_term(clause_text)), symbols
        )
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(read_term(query_text))
        fs2.match_compiled(compiled)
        return fs2.tue.op_counts

    def test_simple_match_ops(self):
        ops = self.op_counts("p(a, b)", "p(a, b)")
        assert ops[HardwareOp.MATCH] == 2

    def test_store_fetch_ops(self):
        ops = self.op_counts("p(a, a)", "p(X, X)")
        assert ops[HardwareOp.DB_STORE] == 1
        assert ops[HardwareOp.DB_FETCH] == 1

    def test_cross_bound_ops(self):
        ops = self.op_counts("f(X, a, b)", "f(A, a, A)")
        assert ops[HardwareOp.DB_CROSS_BOUND_FETCH] == 1
        assert ops[HardwareOp.DB_STORE] == 1
        assert ops[HardwareOp.QUERY_STORE] == 1

    def test_time_follows_table1(self):
        symbols = SymbolTable()
        compiled = compile_clause(clause_from_term(read_term("p(a)")), symbols)
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(read_term("p(a)"))
        fs2.match_compiled(compiled)
        assert fs2.tue.op_time_ns == 105  # one MATCH


class TestStatsInvariants:
    @settings(max_examples=150, deadline=None)
    @given(clause_heads(arity=3), clause_heads(arity=3))
    def test_op_time_is_sum_of_table1(self, query, head):
        """op_time_ns must equal the Table 1 cost of the counted ops."""
        from repro.fs2.timing import execution_time_ns

        symbols = SymbolTable()
        try:
            compiled = compile_clause(Clause(head), symbols)
        except PIFError:
            return
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(query)
        fs2.match_compiled(compiled)
        expected = sum(
            execution_time_ns(op) * count
            for op, count in fs2.tue.op_counts.items()
        )
        assert fs2.tue.op_time_ns == expected


class TestHardwareOracleEquivalence:
    """The microcoded simulator must agree with the software oracle."""

    @settings(max_examples=400, deadline=None)
    @given(clause_heads(arity=3), clause_heads(arity=3))
    def test_decision_and_op_equivalence(self, query, head):
        symbols = SymbolTable()
        try:
            compiled = compile_clause(Clause(head), symbols)
        except PIFError:
            return  # oversized/unencodable: outside the hardware's domain
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(query)
        sim_hit = fs2.match_compiled(compiled)
        oracle = PartialMatcher(query, level=3, cross_binding=True).match_head(
            head
        )
        assert sim_hit == oracle.hit
        assert Counter(fs2.tue.op_counts) == oracle.ops

    @settings(max_examples=400, deadline=None)
    @given(clause_heads(arity=2), clause_heads(arity=2))
    def test_soundness(self, query, head):
        symbols = SymbolTable()
        try:
            compiled = compile_clause(Clause(head), symbols)
        except PIFError:
            return
        if not unifiable(query, rename_apart(head)):
            return
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(query)
        assert fs2.match_compiled(compiled), "FS2 dropped a true unifier"

    @settings(max_examples=200, deadline=None)
    @given(clause_heads(arity=2), clause_heads(arity=2))
    def test_equivalence_without_cross_binding(self, query, head):
        symbols = SymbolTable()
        try:
            compiled = compile_clause(Clause(head), symbols)
        except PIFError:
            return
        fs2 = SecondStageFilter(symbols, cross_binding=False)
        fs2.load_microprogram()
        fs2.set_query(query)
        sim_hit = fs2.match_compiled(compiled)
        oracle = PartialMatcher(query, level=3, cross_binding=False).match_head(
            head
        )
        assert sim_hit == oracle.hit

    def test_big_terms_equivalence(self):
        """Pointer-form structures and lists (arity > 31)."""
        big_args = ", ".join(str(i) for i in range(40))
        cases = [
            (f"p(big({big_args}))", f"p(big({big_args}))", True),
            (f"p([{big_args}])", f"p([{big_args}])", True),
            (f"p([{big_args}])", "p([1, 2, 3])", False),
            (f"p([{big_args} | T])", "p([0, 1, 2])", True),
        ]
        for query_text, clause_text, expected in cases:
            symbols = SymbolTable()
            compiled = compile_clause(
                clause_from_term(read_term(clause_text)), symbols
            )
            fs2 = SecondStageFilter(symbols)
            fs2.load_microprogram()
            query = read_term(query_text)
            fs2.set_query(query)
            sim_hit = fs2.match_compiled(compiled)
            oracle_hit = PartialMatcher(query).match_head(
                read_term(clause_text)
            ).hit
            assert sim_hit == oracle_hit == expected, (query_text, clause_text)
