"""Differential harness: sharded retrieval must equal the single engine.

For any knowledge base, any goal, any shard count, any routing policy and
any of the four CRS search modes, :class:`ShardedRetrievalServer` must
return exactly the same clause set (order-insensitive, multiplicities
included) as one :class:`ClauseRetrievalServer` over the unpartitioned
KB.  Shared-variable goals such as ``married_couple(X, X)`` have an
unbound first argument and must broadcast; goals with >12-argument
predicates exercise the FS1 codeword truncation limit through every
shard policy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.crs import ClauseRetrievalServer, SearchMode
from repro.storage import KnowledgeBase, Residency, UnknownPredicateError
from repro.terms import Clause, Struct, Var, read_term

from .strategies import clause_heads, terms

ALL_POLICIES = list(ShardingPolicy)
ALL_MODES = list(SearchMode)


def candidate_multiset(result):
    return sorted(str(clause) for clause in result.candidates)


def build_single(clauses):
    kb = KnowledgeBase()
    kb.consult_clauses(clauses)
    return ClauseRetrievalServer(kb)


def build_sharded(clauses, num_shards, policy, **kwargs):
    server = ShardedRetrievalServer(num_shards, policy, **kwargs)
    server.consult_clauses(clauses)
    return server


def assert_differential(clauses, goals, shard_counts, policies, modes):
    single = build_single(clauses)
    for policy in policies:
        for num_shards in shard_counts:
            sharded = build_sharded(clauses, num_shards, policy)
            for goal in goals:
                for mode in modes:
                    expected = candidate_multiset(
                        single.retrieve(goal, mode=mode)
                    )
                    got = candidate_multiset(
                        sharded.retrieve(goal, mode=mode)
                    )
                    assert got == expected, (
                        f"policy={policy.value} shards={num_shards} "
                        f"goal={goal} mode={mode}"
                    )


def goals_for(heads_strategy):
    """Goals shaped like the clause heads, variables included."""
    return heads_strategy


class TestDifferentialProperty:
    """Random KBs and goals: every policy, shard count and mode agrees."""

    @given(
        heads=st.lists(
            clause_heads(functor="p", arity=3), min_size=1, max_size=14
        ),
        goal=clause_heads(functor="p", arity=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_same_clause_set_all_policies_and_modes(self, heads, goal):
        clauses = [Clause(head=h) for h in heads]
        assert_differential(
            clauses, [goal], (1, 4), ALL_POLICIES, ALL_MODES
        )

    @given(
        heads=st.lists(
            clause_heads(functor="p", arity=2, include_variables=False),
            min_size=1,
            max_size=10,
        ),
        shared=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_shared_variable_goals_broadcast_correctly(self, heads, shared):
        clauses = [Clause(head=h) for h in heads]
        # married_couple(X, X)-style goal: the shared variable makes the
        # first argument unindexable, forcing a broadcast.
        goal = (
            Struct("p", (Var("X"), Var("X")))
            if shared
            else Struct("p", (Var("X"), Var("Y")))
        )
        assert_differential(
            clauses, [goal], (2, 7), ALL_POLICIES, ALL_MODES
        )

    @pytest.mark.slow
    @given(
        heads=st.lists(
            clause_heads(functor="p", arity=3), min_size=1, max_size=20
        ),
        goals=st.lists(
            clause_heads(functor="p", arity=3), min_size=1, max_size=3
        ),
        extra=st.lists(terms(max_depth=2), min_size=0, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_exhaustive_shard_counts(self, heads, goals, extra):
        clauses = [Clause(head=h) for h in heads]
        clauses += [Clause(head=Struct("q", (t,))) for t in extra]
        assert_differential(
            clauses, goals, (1, 2, 4, 7), ALL_POLICIES, ALL_MODES
        )


class TestFixedScenarios:
    PROGRAM = """
    parent(tom, bob). parent(tom, liz). parent(bob, ann).
    parent(pat, jim). parent(liz, joe). parent(X, anyone).
    married_couple(x, x). married_couple(a, b). married_couple(c, c).
    married_couple(Y, Y).
    tiny(1). tiny(2.0). tiny(-0.0). tiny(f(g)).
    """

    def clauses(self):
        kb = KnowledgeBase()
        kb.consult_text(self.PROGRAM)
        return [
            clause
            for indicator in kb.predicates()
            for clause in kb.clauses(indicator)
        ]

    GOALS = [
        "parent(tom, X)",
        "parent(X, Y)",
        "married_couple(W, W)",
        "married_couple(x, Z)",
        "married_couple(A, B)",
        "tiny(2.0)",
        "tiny(0.0)",
        "tiny(f(X))",
    ]

    def test_fixed_goals_all_policies(self):
        clauses = self.clauses()
        goals = [read_term(text) for text in self.GOALS]
        assert_differential(
            clauses, goals, (1, 2, 4, 7), ALL_POLICIES, ALL_MODES
        )

    def test_planner_selected_mode_agrees(self):
        clauses = self.clauses()
        single = build_single(clauses)
        for policy in ALL_POLICIES:
            sharded = build_sharded(clauses, 4, policy)
            for text in self.GOALS:
                goal = read_term(text)
                assert candidate_multiset(
                    sharded.retrieve(goal)
                ) == candidate_multiset(single.retrieve(goal))

    def test_solutions_agree(self):
        clauses = self.clauses()
        single = build_single(clauses)
        for policy in ALL_POLICIES:
            sharded = build_sharded(clauses, 4, policy)
            for text in self.GOALS:
                goal = read_term(text)
                expected = sorted(
                    str(clause) for clause, _ in single.solutions(goal)
                )
                got = sorted(
                    str(clause) for clause, _ in sharded.solutions(goal)
                )
                assert got == expected, (policy, text)

    def test_unknown_predicate_raises_like_single_engine(self):
        clauses = self.clauses()
        goal = read_term("nosuch(a, b)")
        single = build_single(clauses)
        with pytest.raises(UnknownPredicateError):
            single.retrieve(goal)
        for policy in ALL_POLICIES:
            sharded = build_sharded(clauses, 3, policy)
            with pytest.raises(UnknownPredicateError):
                sharded.retrieve(goal)

    def test_disk_resident_shards_agree(self):
        clauses = self.clauses()
        kb = KnowledgeBase()
        kb.consult_clauses(clauses)
        kb.module("user").pin(Residency.DISK)
        kb.sync_to_disk()
        single = ClauseRetrievalServer(kb)
        goals = [read_term(text) for text in self.GOALS]
        for policy in ALL_POLICIES:
            sharded = build_sharded(clauses, 3, policy)
            sharded.pin_module("user", Residency.DISK)
            for goal in goals:
                for mode in ALL_MODES:
                    assert candidate_multiset(
                        sharded.retrieve(goal, mode=mode)
                    ) == candidate_multiset(single.retrieve(goal, mode=mode))

    def test_updates_visible_through_sharded_front_end(self):
        clauses = self.clauses()
        for policy in ALL_POLICIES:
            sharded = build_sharded(clauses, 4, policy, cache_size=8)
            before = len(sharded.retrieve(read_term("parent(X, Y)")))
            sharded.assertz(read_term("parent(new, comer)"))
            assert (
                len(sharded.retrieve(read_term("parent(X, Y)"))) == before + 1
            )
            assert sharded.retract(read_term("parent(new, comer)"))
            assert len(sharded.retrieve(read_term("parent(X, Y)"))) == before


class TestFS1TruncationEdge:
    """The paper's 12-argument codeword limit, through every policy.

    Clause heads with more than 12 encoded arguments are truncated by
    the SCW generator: arguments beyond the limit contribute nothing to
    the codeword, so FS1 may pass false drops that FS2 (or software)
    filters — but a matching clause must *never* be falsely dismissed,
    on any shard, under any routing policy.
    """

    ARITY = 14  # beyond the 12-argument codeword truncation limit

    def wide_clauses(self):
        def fact(args):
            return Clause(head=Struct("wide", tuple(args)))

        from repro.terms import Atom

        base = [Atom(f"c{i}") for i in range(self.ARITY)]
        variant = list(base)
        variant[13] = Atom("different")  # differs only beyond the limit
        other = [Atom(f"d{i}") for i in range(self.ARITY)]
        return [fact(base), fact(variant), fact(other)]

    def test_wide_heads_retrievable_everywhere(self):
        clauses = self.wide_clauses()
        goals = [
            read_term(
                "wide(" + ",".join(f"c{i}" for i in range(self.ARITY)) + ")"
            ),
            # Pin only the post-truncation argument: invisible to FS1.
            Struct(
                "wide",
                tuple(
                    [Var(f"A{i}") for i in range(13)]
                    + [read_term("different")]
                ),
            ),
            Struct("wide", tuple(Var(f"B{i}") for i in range(self.ARITY))),
        ]
        assert_differential(
            clauses, goals, (1, 2, 4, 7), ALL_POLICIES, ALL_MODES
        )

    def test_no_false_dismissal_beyond_truncation(self):
        clauses = self.wide_clauses()
        goal = Struct(
            "wide",
            tuple([Var(f"A{i}") for i in range(13)] + [read_term("different")]),
        )
        for policy in ALL_POLICIES:
            sharded = build_sharded(clauses, 4, policy)
            for mode in ALL_MODES:
                matches = sharded.solutions(goal, mode=mode)
                assert len(matches) == 1, (policy, mode)
                assert "different" in str(matches[0][0])
