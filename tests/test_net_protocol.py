"""The wire protocol in isolation: framing, payload codecs, errors.

Every request/response payload must round-trip exactly — terms through
the query-side PIF path, clauses through the compiled-record path, and
stats field-for-field including the merged per-shard split — because
the loopback differential suite asserts object equality across the
wire.  Framing failures (bad magic, wrong version, oversize, truncated
payloads) must surface as :class:`ProtocolError`, never as garbage
objects or low-level struct/index errors.
"""

import pytest

from repro.cluster import MergedRetrievalStats
from repro.crs import RetrievalResult, RetrievalStats, RetrievalTimeout, SearchMode
from repro.net import protocol
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER,
    MAGIC,
    DeadlineExceeded,
    ErrorCode,
    FrameType,
    ProtocolError,
    RemoteError,
    ServerBusy,
    ServerDraining,
    WritesFrozen,
    decode_header,
    encode_frame,
)
from repro.storage import UnknownPredicateError
from repro.terms import Clause, read_term


def sample_stats(**overrides) -> RetrievalStats:
    fields = dict(
        mode=SearchMode.BOTH,
        residency="disk",
        clauses_total=120,
        fs1_candidates=17,
        final_candidates=9,
        disk_time_s=0.00125,
        fs1_time_s=0.0005,
        fs2_time_s=0.00025,
        fs2_search_calls=3,
        software_time_s=0.0,
        bytes_from_disk=61440,
    )
    fields.update(overrides)
    return RetrievalStats(**fields)


class TestFraming:
    def test_header_round_trip(self):
        frame = encode_frame(FrameType.REQ_RETRIEVE, 42, b"abc")
        frame_type, request_id, length = decode_header(frame[: HEADER.size])
        assert frame_type is FrameType.REQ_RETRIEVE
        assert request_id == 42
        assert length == 3
        assert frame[HEADER.size :] == b"abc"

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(FrameType.REQ_PING, 1, b""))
        frame[0] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            decode_header(bytes(frame[: HEADER.size]))

    def test_unknown_version_rejected(self):
        frame = bytearray(encode_frame(FrameType.REQ_PING, 1, b""))
        frame[2] = 99
        with pytest.raises(ProtocolError, match="version"):
            decode_header(bytes(frame[: HEADER.size]))

    def test_unknown_frame_type_rejected(self):
        frame = bytearray(encode_frame(FrameType.REQ_PING, 1, b""))
        frame[3] = 0x77
        with pytest.raises(ProtocolError, match="frame type"):
            decode_header(bytes(frame[: HEADER.size]))

    def test_oversized_payload_rejected(self):
        header = HEADER.pack(
            MAGIC, protocol.VERSION, int(FrameType.REQ_RETRIEVE), 1,
            DEFAULT_MAX_FRAME_BYTES + 1,
        )
        with pytest.raises(ProtocolError, match="frame limit"):
            decode_header(header)

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError, match="header"):
            decode_header(b"\x00\x01")

    def test_max_frame_bytes_is_configurable(self):
        header = HEADER.pack(
            MAGIC, protocol.VERSION, int(FrameType.REQ_RETRIEVE), 1, 2048
        )
        decode_header(header, max_frame_bytes=2048)
        with pytest.raises(ProtocolError, match="frame limit"):
            decode_header(header, max_frame_bytes=2047)


class TestRequestPayloads:
    @pytest.mark.parametrize(
        "text",
        [
            "p(a, b)",
            "p(X, Y)",
            "married_couple(X, X)",
            "p(f(g(X), [1, 2.5, -3]), \"str\", 'Funny Atom')",
            "big(A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13)",
        ],
    )
    def test_retrieve_request_round_trip(self, text):
        goal = read_term(text)
        payload = protocol.encode_retrieve_request(
            goal, SearchMode.FS1_ONLY, 1500
        )
        decoded, mode, deadline_ms = protocol.decode_retrieve_request(payload)
        assert str(decoded) == str(goal)
        assert mode is SearchMode.FS1_ONLY
        assert deadline_ms == 1500

    def test_default_mode_and_deadline(self):
        payload = protocol.encode_retrieve_request(read_term("p(a)"))
        _, mode, deadline_ms = protocol.decode_retrieve_request(payload)
        assert mode is None
        assert deadline_ms == 0

    def test_batch_request_round_trip(self):
        goals = [read_term("p(a, X)"), read_term("q(Y)"), read_term("r")]
        payload = protocol.encode_batch_request(goals, SearchMode.BOTH, 250)
        decoded, mode, deadline_ms = protocol.decode_batch_request(payload)
        assert [str(g) for g in decoded] == [str(g) for g in goals]
        assert mode is SearchMode.BOTH
        assert deadline_ms == 250

    def test_mutate_request_round_trip_with_write_id(self):
        clause = Clause(head=read_term("p(a, b)"), body=())
        payload = protocol.encode_mutate_request(
            "assertz", clause, "mod", 7, 1500, "client1:42"
        )
        op, decoded, module, version, deadline_ms, write_id = (
            protocol.decode_mutate_request(payload)
        )
        assert op == "assertz"
        assert str(decoded) == str(clause)
        assert module == "mod"
        assert version == 7
        assert deadline_ms == 1500
        assert write_id == "client1:42"

    def test_mutate_request_write_id_defaults_empty(self):
        # A frame without the trailing write_id field (an unstamped or
        # old-encoder frame) must decode as "" — not raise.
        clause = Clause(head=read_term("p(a)"), body=())
        payload = protocol.encode_mutate_request("retract", clause)
        *_, write_id = protocol.decode_mutate_request(payload)
        assert write_id == ""

    def test_shared_variables_stay_shared(self):
        # q(X, X) must decode with *one* variable bound twice, not two
        # renamed-apart variables — routing and unification key
        # variables by name within a query.
        payload = protocol.encode_retrieve_request(read_term("q(X, X)"))
        decoded, _, _ = protocol.decode_retrieve_request(payload)
        assert decoded.args[0] == decoded.args[1]
        assert decoded.args[0].name == "X"


class TestResponsePayloads:
    def result_for(self, goal_text, clause_texts, stats):
        return RetrievalResult(
            goal=read_term(goal_text),
            candidates=[
                Clause(head=read_term(text)) for text in clause_texts
            ],
            stats=stats,
        )

    def test_result_round_trip(self):
        result = self.result_for(
            "p(a, X)", ["p(a, b)", "p(a, c)"], sample_stats()
        )
        decoded = protocol.decode_result_response(
            protocol.encode_result_response(result)
        )
        assert str(decoded.goal) == str(result.goal)
        assert [str(c) for c in decoded.candidates] == [
            str(c) for c in result.candidates
        ]
        assert decoded.stats == result.stats

    def test_plain_stats_equality_is_exact(self):
        stats = sample_stats(fs1_candidates=None, mode=SearchMode.SOFTWARE)
        result = self.result_for("p(X)", [], stats)
        decoded = protocol.decode_result_response(
            protocol.encode_result_response(result)
        )
        assert type(decoded.stats) is RetrievalStats
        assert decoded.stats == stats

    def test_merged_stats_round_trip(self):
        merged = MergedRetrievalStats(
            mode=SearchMode.BOTH,
            residency="disk",
            clauses_total=40,
            fs1_candidates=8,
            final_candidates=5,
            disk_time_s=0.002,
            fs1_time_s=0.0004,
            fs2_time_s=0.0002,
            fs2_search_calls=2,
            software_time_s=0.0,
            bytes_from_disk=2048,
            shards_queried=2,
            broadcast=True,
            per_shard={
                0: sample_stats(clauses_total=25),
                3: sample_stats(clauses_total=15, fs1_candidates=None),
            },
        )
        result = self.result_for("p(X)", ["p(a)"], merged)
        decoded = protocol.decode_result_response(
            protocol.encode_result_response(result)
        )
        assert type(decoded.stats) is MergedRetrievalStats
        assert decoded.stats == merged
        assert decoded.stats.per_shard.keys() == {0, 3}

    def test_batch_response_round_trip(self):
        results = [
            self.result_for("p(a)", ["p(a)"], sample_stats()),
            self.result_for("q(X)", [], None),
        ]
        decoded = protocol.decode_batch_response(
            protocol.encode_batch_response(results)
        )
        assert len(decoded) == 2
        assert decoded[0].stats == results[0].stats
        assert decoded[1].stats is None
        assert decoded[1].candidates == []

    def test_clause_with_body_round_trips(self):
        clause = Clause(
            head=read_term("grandparent(X, Z)"),
            body=(read_term("parent(X, Y)"), read_term("parent(Y, Z)")),
        )
        result = RetrievalResult(
            goal=read_term("grandparent(A, B)"),
            candidates=[clause],
            stats=None,
        )
        decoded = protocol.decode_result_response(
            protocol.encode_result_response(result)
        )
        assert str(decoded.candidates[0]) == str(clause)


class TestPayloadCorruption:
    def make_payload(self):
        return protocol.encode_result_response(
            RetrievalResult(
                goal=read_term("p(a, X)"),
                candidates=[Clause(head=read_term("p(a, b)"))],
                stats=sample_stats(),
            )
        )

    def test_truncated_payload_raises_protocol_error(self):
        payload = self.make_payload()
        # Every possible truncation point must fail cleanly.
        for cut in range(0, len(payload) - 1, 7):
            with pytest.raises(ProtocolError):
                protocol.decode_result_response(payload[:cut])

    def test_corrupt_symbol_table_length(self):
        payload = bytearray(self.make_payload())
        payload[0:4] = (2**32 - 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            protocol.decode_result_response(bytes(payload))

    def test_error_payload_round_trip(self):
        payload = protocol.encode_error(
            ErrorCode.SERVER_BUSY, "21 requests already admitted"
        )
        code, message = protocol.decode_error(payload)
        assert code is ErrorCode.SERVER_BUSY
        assert "21" in message

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_error(b"\xee\x00\x00")


class TestErrorMapping:
    @pytest.mark.parametrize(
        "code,expected",
        [
            (ErrorCode.SERVER_BUSY, ServerBusy),
            (ErrorCode.DEADLINE_EXPIRED, DeadlineExceeded),
            (ErrorCode.UNKNOWN_PREDICATE, UnknownPredicateError),
            (ErrorCode.SHUTTING_DOWN, ServerDraining),
            (ErrorCode.WRITE_FROZEN, WritesFrozen),
            (ErrorCode.BAD_REQUEST, RemoteError),
            (ErrorCode.INTERNAL, RemoteError),
        ],
    )
    def test_error_to_exception(self, code, expected):
        assert isinstance(protocol.error_to_exception(code, "m"), expected)

    @pytest.mark.parametrize(
        "exc,code",
        [
            (ServerBusy("x"), ErrorCode.SERVER_BUSY),
            (DeadlineExceeded("x"), ErrorCode.DEADLINE_EXPIRED),
            (RetrievalTimeout("x"), ErrorCode.DEADLINE_EXPIRED),
            (ServerDraining("x"), ErrorCode.SHUTTING_DOWN),
            (WritesFrozen("x"), ErrorCode.WRITE_FROZEN),
            (ProtocolError("x"), ErrorCode.BAD_REQUEST),
            (ValueError("x"), ErrorCode.BAD_REQUEST),
            (RuntimeError("x"), ErrorCode.INTERNAL),
        ],
    )
    def test_exception_to_error(self, exc, code):
        got_code, _ = protocol.exception_to_error(exc)
        assert got_code is code

    def test_unknown_predicate_message_unwrapped(self):
        code, message = protocol.exception_to_error(
            UnknownPredicateError("no procedure nosuch/3")
        )
        assert code is ErrorCode.UNKNOWN_PREDICATE
        assert message == "no procedure nosuch/3"  # no KeyError repr quotes
