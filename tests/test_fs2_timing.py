"""Table 1 reproduction tests: FS2 operation timings from device delays."""

import pytest

from repro.fs2 import timing
from repro.fs2.timing import (
    CLOCK_HZ,
    DEVICE_DELAYS_NS,
    OPERATION_TIMINGS,
    execution_time_ns,
    table1,
    worst_case_op,
    worst_case_rate_bytes_per_sec,
)
from repro.unify import HardwareOp


class TestTable1:
    """Every row of Table 1 must come out of the route model exactly."""

    @pytest.mark.parametrize(
        "op,expected_ns",
        [
            (HardwareOp.MATCH, 105),
            (HardwareOp.DB_STORE, 95),
            (HardwareOp.QUERY_STORE, 115),
            (HardwareOp.DB_FETCH, 105),
            (HardwareOp.QUERY_FETCH, 170),
            (HardwareOp.DB_CROSS_BOUND_FETCH, 170),
            (HardwareOp.QUERY_CROSS_BOUND_FETCH, 235),
        ],
    )
    def test_execution_times(self, op, expected_ns):
        assert execution_time_ns(op) == expected_ns

    def test_table_covers_all_seven_ops(self):
        assert set(OPERATION_TIMINGS) == set(HardwareOp)
        assert len(table1()) == 7

    def test_figure_numbers(self):
        figures = {t.figure: t.op for t in OPERATION_TIMINGS.values()}
        assert figures[6] == HardwareOp.MATCH
        assert figures[12] == HardwareOp.QUERY_CROSS_BOUND_FETCH

    def test_cycle_counts(self):
        """MATCH/stores/DB_FETCH are single cycle; QUERY_FETCH and
        DB_CROSS_BOUND_FETCH take two; QUERY_CROSS_BOUND_FETCH takes
        three microprogram cycles (paper sections 3.3.5-3.3.7)."""
        counts = {
            op: OPERATION_TIMINGS[op].cycle_count() for op in HardwareOp
        }
        assert counts[HardwareOp.MATCH] == 1
        assert counts[HardwareOp.DB_STORE] == 1
        assert counts[HardwareOp.QUERY_STORE] == 1
        assert counts[HardwareOp.DB_FETCH] == 1
        assert counts[HardwareOp.QUERY_FETCH] == 2
        assert counts[HardwareOp.DB_CROSS_BOUND_FETCH] == 2
        assert counts[HardwareOp.QUERY_CROSS_BOUND_FETCH] == 3


class TestRouteBreakdown:
    """The per-figure route legs, leg by leg."""

    def test_match_routes(self):
        op = OPERATION_TIMINGS[HardwareOp.MATCH]
        cycle = op.cycles[0]
        assert cycle.db_route is not None and cycle.db_route.delay_ns() == 40
        assert cycle.query_route is not None and cycle.query_route.delay_ns() == 75

    def test_db_store_routes(self):
        op = OPERATION_TIMINGS[HardwareOp.DB_STORE]
        cycle = op.cycles[0]
        assert cycle.db_route is not None and cycle.db_route.delay_ns() == 60
        assert cycle.query_route is not None and cycle.query_route.delay_ns() == 75

    def test_query_store_routes(self):
        op = OPERATION_TIMINGS[HardwareOp.QUERY_STORE]
        cycle = op.cycles[0]
        assert cycle.db_route is not None and cycle.db_route.delay_ns() == 80

    def test_query_fetch_cycles(self):
        op = OPERATION_TIMINGS[HardwareOp.QUERY_FETCH]
        assert op.cycles[0].delay_ns() == 120
        assert op.cycles[1].delay_ns() == 20

    def test_query_cross_bound_fetch_cycles(self):
        op = OPERATION_TIMINGS[HardwareOp.QUERY_CROSS_BOUND_FETCH]
        assert [c.delay_ns() for c in op.cycles] == [95, 65, 45]

    def test_device_delays_as_published(self):
        assert DEVICE_DELAYS_NS["double_buffer"] == 20
        assert DEVICE_DELAYS_NS["sel"] == 20
        assert DEVICE_DELAYS_NS["query_memory"] == 35
        assert DEVICE_DELAYS_NS["db_memory_read"] == 25
        assert DEVICE_DELAYS_NS["comparator"] == 30

    def test_sensitivity_to_device_delays(self):
        """Faster selectors shorten exactly the selector-bound routes."""
        faster = dict(DEVICE_DELAYS_NS)
        faster["sel"] = 10
        op = OPERATION_TIMINGS[HardwareOp.MATCH]
        assert op.execution_time_ns(faster) < op.execution_time_ns()


class TestDerivedRates:
    def test_worst_case_op(self):
        assert worst_case_op() == HardwareOp.QUERY_CROSS_BOUND_FETCH

    def test_worst_case_rate_is_4_25_mbytes(self):
        rate = worst_case_rate_bytes_per_sec()
        assert rate == pytest.approx(4.25e6, rel=0.01)

    def test_faster_than_peak_disk(self):
        """Section 4: even the fast SMD disk at ~2 MB/s cannot outrun FS2."""
        assert worst_case_rate_bytes_per_sec() > 2_000_000

    def test_clock(self):
        assert CLOCK_HZ == 8_000_000
