"""The network service end to end over loopback TCP.

The load-bearing suite for the serving layer:

* **differential** — a client must return element-wise identical
  clauses *and stats* to calling the in-process
  :class:`ShardedRetrievalServer` directly, including broadcast-forcing
  shared-variable goals and Result-Memory-overflow retrievals;
* **overload** — past ``max_in_flight + queue_limit`` the server sheds
  load with ``SERVER_BUSY`` immediately, and the p99 latency of the
  requests it *did* admit stays bounded;
* **deadlines** — a request that spends its budget queueing fails with
  ``DEADLINE_EXPIRED`` without touching the engines;
* **drain** — graceful shutdown completes every admitted request.
"""

import threading
import time

import pytest

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.crs import SearchMode
from repro.net import (
    AsyncRetrievalClient,
    BackgroundService,
    BackoffPolicy,
    DeadlineExceeded,
    RetrievalClient,
    RetrievalService,
    ServerBusy,
    ServerDraining,
)
from repro.obs import Instrumentation
from repro.storage import Residency, UnknownPredicateError
from repro.terms import read_term
from repro.workloads import percentile, run_loadgen


def family_engine(num_shards=2, policy=ShardingPolicy.FIRST_ARG, **kwargs):
    engine = ShardedRetrievalServer(num_shards, policy, **kwargs)
    engine.consult_text(
        """
        parent(tom, bob). parent(tom, liz). parent(bob, ann).
        parent(bob, pat). parent(pat, jim). parent(liz, joe).
        married_couple(amy, amy). married_couple(sam, pam).
        likes(X, prolog). grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
        """
    )
    return engine


@pytest.fixture
def served_family():
    engine = family_engine()
    service = RetrievalService(engine)
    with BackgroundService(service) as background:
        host, port = background.start()
        with RetrievalClient(host, port) as client:
            yield engine, client


DIFFERENTIAL_GOALS = [
    "parent(tom, X)",
    "parent(X, jim)",
    "parent(X, Y)",
    "married_couple(X, X)",  # unbound first arg: must broadcast
    "married_couple(W, W)",  # same broadcast under renaming
    "likes(anyone, What)",
    "grandparent(A, B)",
]


class TestLoopbackDifferential:
    """Client answers == in-process answers, clause for clause."""

    @pytest.mark.parametrize("goal_text", DIFFERENTIAL_GOALS)
    @pytest.mark.parametrize("mode", [None, SearchMode.SOFTWARE, SearchMode.BOTH])
    def test_retrieve_matches_in_process(self, served_family, goal_text, mode):
        engine, client = served_family
        goal = read_term(goal_text)
        local = engine.retrieve(goal, mode=mode)
        remote = client.retrieve(goal, mode=mode)
        assert [str(c) for c in remote.candidates] == [
            str(c) for c in local.candidates
        ]
        assert remote.stats == local.stats
        assert str(remote.goal) == str(goal)

    def test_retrieve_batch_matches_in_process(self, served_family):
        engine, client = served_family
        goals = [read_term(text) for text in DIFFERENTIAL_GOALS]
        local = engine.retrieve_batch(goals)
        remote = client.retrieve_batch(goals)
        assert len(remote) == len(local) == len(goals)
        for local_result, remote_result in zip(local, remote):
            assert [str(c) for c in remote_result.candidates] == [
                str(c) for c in local_result.candidates
            ]
            assert remote_result.stats == local_result.stats

    def test_unknown_predicate_propagates(self, served_family):
        _, client = served_family
        with pytest.raises(UnknownPredicateError):
            client.retrieve(read_term("no_such_predicate(X)"))

    def test_rm_overflow_goal_over_the_wire(self):
        # 200 facts pinned to disk, FS2_ONLY: the CRS must chunk the
        # search around the 64-satisfier Result Memory, and the wire
        # answer (candidates, stats, fs2_search_calls) must agree with
        # the in-process one exactly.
        engine = ShardedRetrievalServer(2, ShardingPolicy.FIRST_ARG)
        engine.consult_text(" ".join(f"p({i})." for i in range(200)))
        engine.pin_module("user", Residency.DISK)
        service = RetrievalService(engine)
        with BackgroundService(service) as background:
            host, port = background.start()
            with RetrievalClient(host, port) as client:
                goal = read_term("p(X)")
                local = engine.retrieve(goal, mode=SearchMode.FS2_ONLY)
                remote = client.retrieve(goal, mode=SearchMode.FS2_ONLY)
                assert len(remote.candidates) == 200
                assert remote.stats.fs2_search_calls >= 4
                assert [str(c) for c in remote.candidates] == [
                    str(c) for c in local.candidates
                ]
                assert remote.stats == local.stats


class TestServiceSurface:
    def test_ping_and_stats(self, served_family):
        engine, client = served_family
        assert client.ping() is True
        snapshot = client.stats()
        assert snapshot["engine_clauses"] == engine.clause_count()
        assert snapshot["draining"] is False

    def test_counters_track_requests(self):
        obs = Instrumentation()
        engine = family_engine()
        service = RetrievalService(engine, obs=obs)
        with BackgroundService(service) as background:
            host, port = background.start()
            with RetrievalClient(host, port) as client:
                client.retrieve(read_term("parent(tom, X)"))
                client.retrieve_batch([read_term("parent(bob, X)")])
        registry = obs.registry
        assert registry.total("net.accepted") == 2
        assert registry.total("net.connections") >= 1
        assert registry.total("net.bytes_in") > 0
        assert registry.total("net.bytes_out") > 0
        assert registry.total("net.drains") == 1
        assert registry.gauge("net.queue_depth").value == 0

    def test_async_client_matches_sync(self, served_family):
        import asyncio

        engine, sync_client = served_family
        host = sync_client._core.host
        port = sync_client._core.port

        async def run():
            async with AsyncRetrievalClient(host, port) as client:
                result = await client.retrieve(read_term("parent(tom, X)"))
                batch = await client.retrieve_batch(
                    [read_term("parent(bob, X)"), read_term("parent(X, Y)")]
                )
                assert await client.ping() is True
                return result, batch

        result, batch = asyncio.run(run())
        local = engine.retrieve(read_term("parent(tom, X)"))
        assert [str(c) for c in result.candidates] == [
            str(c) for c in local.candidates
        ]
        assert result.stats == local.stats
        assert len(batch) == 2


class SlowEngine:
    """An engine whose every retrieval takes a fixed host time."""

    def __init__(self, engine, delay_s):
        self.engine = engine
        self.delay_s = delay_s

    def clause_count(self):
        return self.engine.clause_count()

    def retrieve(self, goal, mode=None, timeout=None):
        time.sleep(self.delay_s)
        return self.engine.retrieve(goal, mode=mode, timeout=timeout)

    def retrieve_batch(self, goals, mode=None, timeout=None):
        time.sleep(self.delay_s)
        return self.engine.retrieve_batch(goals, mode=mode, timeout=timeout)


class TestOverload:
    def test_busy_rejections_and_bounded_admitted_latency(self):
        """Acceptance: overload sheds with SERVER_BUSY, admitted p99 bounded.

        1 worker * 50 ms per retrieval and a queue of 2 gives capacity
        for 3 admitted requests; 12 concurrent clients guarantee
        rejections.  Every admitted request waits at most
        (queue_limit + 1) * delay, so its measured latency is bounded —
        that is the explicit-admission-control contract.
        """
        delay_s = 0.05
        max_in_flight, queue_limit = 1, 2
        obs = Instrumentation()
        engine = SlowEngine(family_engine(), delay_s)
        service = RetrievalService(
            engine, max_in_flight=max_in_flight, queue_limit=queue_limit,
            obs=obs,
        )
        goal = read_term("parent(tom, X)")
        outcomes = []
        outcome_lock = threading.Lock()

        def one_client():
            # No retries: a SERVER_BUSY answer must count as shed load.
            with RetrievalClient(
                service.host, service.port,
                backoff=BackoffPolicy(max_retries=0),
            ) as client:
                begin = time.monotonic()
                try:
                    client.retrieve(goal)
                except ServerBusy:
                    with outcome_lock:
                        outcomes.append(("busy", time.monotonic() - begin))
                else:
                    with outcome_lock:
                        outcomes.append(("ok", time.monotonic() - begin))

        with BackgroundService(service) as background:
            background.start()
            threads = [
                threading.Thread(target=one_client) for _ in range(12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)

        ok_latencies = [t for kind, t in outcomes if kind == "ok"]
        busy = [t for kind, t in outcomes if kind == "busy"]
        assert len(outcomes) == 12
        assert busy, "overload never produced a SERVER_BUSY rejection"
        assert ok_latencies, "no request was admitted under overload"
        # Admitted p99 bounded: worst case is a full queue ahead of you.
        bound_s = (queue_limit + 1) * delay_s + 1.0  # + generous host slack
        assert percentile(ok_latencies, 0.99) < bound_s
        # Rejections are immediate — far cheaper than one engine call.
        assert min(busy) < delay_s
        registry = obs.registry
        assert registry.total("net.busy_rejected") == len(busy)
        assert registry.total("net.accepted") == len(ok_latencies)

    def test_loadgen_counts_busy_under_overload(self):
        engine = SlowEngine(family_engine(), 0.03)
        service = RetrievalService(engine, max_in_flight=1, queue_limit=1)
        with BackgroundService(service) as background:
            host, port = background.start()
            result = run_loadgen(
                host, port, [read_term("parent(tom, X)")],
                qps=200.0, duration_s=0.25,
            )
        assert result.offered == 50
        assert result.ok + result.busy + result.errors == result.offered
        assert result.busy > 0  # open loop kept offering past capacity
        assert result.ok > 0


class TestDeadlines:
    def test_queue_wait_burns_deadline(self):
        """A request that queues past its budget fails without executing."""
        engine = SlowEngine(family_engine(), 0.15)
        service = RetrievalService(engine, max_in_flight=1, queue_limit=4)
        with BackgroundService(service) as background:
            host, port = background.start()
            with RetrievalClient(
                host, port, backoff=BackoffPolicy(max_retries=0)
            ) as blocker, RetrievalClient(
                host, port, backoff=BackoffPolicy(max_retries=0)
            ) as victim:
                goal = read_term("parent(tom, X)")
                filler = threading.Thread(
                    target=lambda: blocker.retrieve(goal)
                )
                filler.start()
                time.sleep(0.03)  # let the filler occupy the one worker
                with pytest.raises(DeadlineExceeded):
                    victim.retrieve(goal, deadline_s=0.05)
                filler.join(timeout=10)

    def test_default_deadline_applies(self):
        engine = SlowEngine(family_engine(), 0.15)
        service = RetrievalService(
            engine, max_in_flight=1, queue_limit=4, default_deadline_s=0.05
        )
        with BackgroundService(service) as background:
            host, port = background.start()
            with RetrievalClient(
                host, port, backoff=BackoffPolicy(max_retries=0)
            ) as blocker, RetrievalClient(
                host, port, backoff=BackoffPolicy(max_retries=0)
            ) as victim:
                goal = read_term("parent(tom, X)")
                filler = threading.Thread(
                    target=lambda: blocker.retrieve(goal)
                )
                filler.start()
                time.sleep(0.03)
                # No explicit deadline: the server's default applies.
                with pytest.raises(DeadlineExceeded):
                    victim.retrieve(goal)
                filler.join(timeout=10)


class TestGracefulDrain:
    def test_drain_completes_in_flight_requests(self):
        """Acceptance: shutdown answers everything it admitted."""
        engine = SlowEngine(family_engine(), 0.1)
        service = RetrievalService(engine, max_in_flight=4, queue_limit=8)
        background = BackgroundService(service)
        host, port = background.start()
        goal = read_term("parent(tom, X)")
        results = []
        failures = []
        lock = threading.Lock()

        def one_client():
            try:
                with RetrievalClient(
                    host, port, backoff=BackoffPolicy(max_retries=0)
                ) as client:
                    result = client.retrieve(goal)
                with lock:
                    results.append(result)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                with lock:
                    failures.append(exc)

        threads = [threading.Thread(target=one_client) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # all four admitted, none finished (0.1 s engine)
        background.stop()  # graceful drain
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures
        assert len(results) == 4
        for result in results:
            assert [str(c) for c in result.candidates] == [
                "parent(tom,bob).", "parent(tom,liz)."
            ]

    def test_draining_server_refuses_new_requests(self):
        engine = family_engine()
        service = RetrievalService(engine)
        with BackgroundService(service) as background:
            host, port = background.start()
            with RetrievalClient(
                host, port, backoff=BackoffPolicy(max_retries=0)
            ) as client:
                client.ping()  # open the connection before the drain
                service._draining = True
                with pytest.raises(ServerDraining):
                    client.retrieve(read_term("parent(tom, X)"))
                service._draining = False

    def test_max_requests_drains_and_stops(self):
        engine = family_engine()
        service = RetrievalService(engine)
        background = BackgroundService(service)
        host, port = background.start()

        def run_until_done():
            # run() is already active inside BackgroundService; here we
            # just drive two requests and watch the service finish.
            with RetrievalClient(host, port) as client:
                client.retrieve(read_term("parent(tom, X)"))
                client.retrieve(read_term("parent(bob, X)"))

        service.max_requests = 2
        run_until_done()
        deadline = time.monotonic() + 10
        while not service._done.is_set() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service._done.is_set()
        background.stop()


class TestLoadgenInjectedClock:
    """Arrival pacing flows from the injected clock/sleep pair, so the
    open-loop schedule is assertable without real time elapsing."""

    def test_frozen_clock_paces_departures_deterministically(self):
        delays = []

        async def recording_sleep(delay):
            delays.append(delay)

        service = RetrievalService(family_engine())
        with BackgroundService(service) as background:
            host, port = background.start()
            result = run_loadgen(
                host, port, [read_term("parent(tom, X)")],
                qps=100.0, duration_s=0.1,
                clock=lambda: 0.0, sleep=recording_sleep,
            )
        assert result.offered == 10
        assert result.ok == 10
        # With time frozen at 0, request i's delay is exactly its
        # departure offset i/qps (i=0 departs immediately, no sleep).
        assert delays == pytest.approx([i / 100.0 for i in range(1, 10)])
        assert result.wall_clock_s == 0.0
        assert result.latencies_s == [0.0] * 10

    def test_cores_sweep_threads_the_injected_clock(self, monkeypatch):
        """``run_cores_sweep`` must hand its clock/sleep pair to every
        per-core ``run_loadgen`` call, or a deterministic sweep silently
        reverts to wall time at core counts > the first."""
        from repro.workloads import loadgen as loadgen_module
        from repro.workloads.loadgen import LoadgenResult, run_cores_sweep

        seen = []

        def fake_run_loadgen(host, port, goals, *, clock, sleep, **kwargs):
            seen.append((clock, sleep))
            return LoadgenResult(offered=1, ok=1, wall_clock_s=1.0)

        monkeypatch.setattr(loadgen_module, "run_loadgen", fake_run_loadgen)
        frozen_clock = lambda: 0.0  # noqa: E731

        async def no_sleep(delay):
            return None

        rows = run_cores_sweep(
            "parent(tom, bob).",
            [read_term("parent(tom, X)")],
            cores=(1, 2),
            workers="threads",
            clock=frozen_clock,
            sleep=no_sleep,
        )
        assert [n for n, _ in rows] == [1, 2]
        assert seen == [(frozen_clock, no_sleep)] * 2


class TestLoadgenMixedWorkload:
    def test_write_fraction_mixes_and_measures_separately(self, tmp_path):
        from repro.storage import DurabilityOptions

        engine = family_engine(
            num_shards=1,
            policy=ShardingPolicy.PREDICATE,
            durability=DurabilityOptions(
                directory=tmp_path / "store", auto_compact=False
            ),
        )
        baseline = engine.clause_count()
        service = RetrievalService(
            engine, max_in_flight=8, executor_workers=8, queue_limit=64
        )
        with BackgroundService(service) as background:
            host, port = background.start()
            result = run_loadgen(
                host, port, [read_term("parent(tom, X)")],
                qps=200.0, duration_s=0.5,
                write_fraction=0.4, seed=7,
            )
        engine.close()
        assert result.offered == 100
        assert result.writes_offered > 0
        assert result.errors == 0 and result.busy == 0
        assert result.writes_ok == result.writes_offered
        assert result.ok == result.offered - result.writes_offered
        # Reads and writes keep separate latency distributions.
        assert len(result.latencies_s) == result.ok
        assert len(result.write_latencies_s) == result.writes_ok
        assert "writes_ok=" in result.summary()
        # Every acked write is in the KB — and survives recovery.
        assert engine.clause_count() == baseline + result.writes_ok
        recovered = ShardedRetrievalServer(
            1,
            ShardingPolicy.PREDICATE,
            durability=DurabilityOptions(
                directory=tmp_path / "store", auto_compact=False
            ),
        )
        assert recovered.clause_count() == baseline + result.writes_ok
        recovered.close()

    def test_same_seed_same_mix(self):
        engine = family_engine()
        service = RetrievalService(
            engine, max_in_flight=8, executor_workers=8, queue_limit=64
        )
        with BackgroundService(service) as background:
            host, port = background.start()
            first = run_loadgen(
                host, port, [read_term("parent(tom, X)")],
                qps=100.0, duration_s=0.3, write_fraction=0.5, seed=3,
            )
            second = run_loadgen(
                host, port, [read_term("parent(tom, X)")],
                qps=100.0, duration_s=0.3, write_fraction=0.5, seed=3,
            )
        assert first.writes_offered == second.writes_offered

    def test_write_fraction_validated(self):
        with pytest.raises(ValueError):
            run_loadgen("h", 1, [read_term("f(x)")], write_fraction=1.5)
