"""Tests for the ZIP-style compiled-clause machine.

The headline invariant: on the compilable fragment, the compiled machine
and the tree-walking interpreter produce identical solution sequences.
"""

import random

import pytest

from repro.engine import PrologMachine
from repro.engine.interp import PrologError
from repro.engine.zipvm import (
    CompileError,
    ZipMachine,
    compile_clause_code,
)
from repro.storage import KnowledgeBase
from repro.terms import (
    clause_from_term,
    functor_indicator,
    read_term,
    term_to_string,
    variables,
)


def make_vm(program: str):
    kb = KnowledgeBase()
    kb.consult_text(program)

    def retriever(goal):
        indicator = functor_indicator(goal)
        if not kb.has_predicate(indicator):
            return []
        return kb.clauses(indicator)

    return ZipMachine(retriever), kb


def vm_answers(vm: ZipMachine, goal_text: str):
    goal = read_term(goal_text)
    names = [v for v in variables(goal) if not v.is_anonymous()]
    out = []
    for bindings in vm.solve(goal):
        out.append(
            tuple(term_to_string(bindings.resolve(v)) for v in names)
        )
    return out


class TestCompilation:
    def test_fact_listing(self):
        code = compile_clause_code(clause_from_term(read_term("p(a, X)")))
        assert code.listing() == ["GET A0, a", "GET A1, Y0", "NECK", "PROCEED"]
        assert code.slots == 1

    def test_rule_listing(self):
        code = compile_clause_code(
            clause_from_term(read_term("p(X) :- q(X), X > 1"))
        )
        listing = code.listing()
        assert listing[0] == "GET A0, Y0"
        assert any(line.startswith("CALL q(") for line in listing)
        assert any(line.startswith("BUILTIN") for line in listing)

    def test_cut_compiles(self):
        code = compile_clause_code(
            clause_from_term(read_term("p(X) :- q(X), !"))
        )
        assert "CUT" in code.listing()

    def test_structures_in_head(self):
        code = compile_clause_code(
            clause_from_term(read_term("p(f(X, [1 | X]))"))
        )
        assert code.slots == 1
        assert code.listing()[0].startswith("GET A0, f(")

    def test_unsupported_constructs_rejected(self):
        for text in [
            "p(X) :- (q(X) ; r(X))",
            "p(X) :- \\+ q(X)",
            "p(X) :- findall(Y, q(Y), X)",
            "p(X) :- assertz(q(X))",
        ]:
            with pytest.raises(CompileError):
                compile_clause_code(clause_from_term(read_term(text)))

    def test_compilation_memoised(self):
        clause = clause_from_term(read_term("memo_test(a, b)"))
        assert compile_clause_code(clause) is compile_clause_code(clause)


class TestExecution:
    def test_facts_and_order(self):
        vm, _ = make_vm("p(c). p(a). p(b).")
        assert vm_answers(vm, "p(X)") == [("c",), ("a",), ("b",)]

    def test_conjunctive_rule(self):
        vm, _ = make_vm(
            "parent(tom, bob). parent(bob, ann). "
            "grand(X, Z) :- parent(X, Y), parent(Y, Z)."
        )
        assert vm_answers(vm, "grand(tom, Z)") == [("ann",)]

    def test_recursion(self):
        vm, _ = make_vm(
            "nat(z). nat(s(X)) :- nat(X)."
        )
        goal = read_term("nat(N)")
        first_four = []
        for bindings in vm.solve(goal):
            first_four.append(term_to_string(bindings.resolve(read_term("N"))))
            if len(first_four) == 4:
                break
        assert first_four == ["z", "s(z)", "s(s(z))", "s(s(s(z)))"]

    def test_append_generation(self):
        vm, _ = make_vm(
            "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R)."
        )
        assert len(vm_answers(vm, "app(A, B, [1, 2, 3])")) == 4

    def test_cut_commits(self):
        vm, _ = make_vm("q(1). q(2). p(X) :- q(X), !. p(99).")
        assert vm_answers(vm, "p(X)") == [("1",)]

    def test_cut_in_max(self):
        vm, _ = make_vm("max(X, Y, X) :- X >= Y, !. max(_, Y, Y).")
        assert vm_answers(vm, "max(3, 2, M)") == [("3",)]
        assert vm_answers(vm, "max(2, 7, M)") == [("7",)]

    def test_inline_arithmetic(self):
        vm, _ = make_vm(
            "fact(0, 1). "
            "fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G."
        )
        assert vm_answers(vm, "fact(5, F)") == [("120",)]

    def test_inline_type_tests(self):
        vm, _ = make_vm(
            "classify(X, number) :- number(X), !. "
            "classify(X, atom) :- atom(X), !. "
            "classify(_, other)."
        )
        assert vm_answers(vm, "classify(3, C)") == [("number",)]
        assert vm_answers(vm, "classify(foo, C)") == [("atom",)]
        assert vm_answers(vm, "classify(f(x), C)") == [("other",)]

    def test_failure_yields_nothing(self):
        vm, _ = make_vm("p(a).")
        assert vm_answers(vm, "p(zzz)") == []

    def test_counters(self):
        vm, _ = make_vm("p(1). p(2). q(X) :- p(X), p(X).")
        list(vm.solve(read_term("q(X)")))
        assert vm.calls > 0
        assert vm.backtracks > 0

    def test_unbound_goal_raises(self):
        vm, _ = make_vm("p(a).")
        with pytest.raises(PrologError):
            list(vm.solve(read_term("X")))


FAMILY = """
parent(tom, bob). parent(tom, liz). parent(bob, ann).
parent(bob, pat). parent(pat, jim). parent(liz, joe).
male(tom). male(bob). male(jim). male(joe).
female(liz). female(ann). female(pat).
father(X, Y) :- parent(X, Y), male(X).
sibling(X, Y) :- parent(P, X), parent(P, Y), X \\== Y.
anc(X, Y) :- parent(X, Y).
anc(X, Z) :- parent(X, Y), anc(Y, Z).
pick(X) :- parent(tom, X), !.
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
"""

DIFFERENTIAL_GOALS = [
    "parent(tom, X)",
    "parent(X, jim)",
    "father(F, C)",
    "sibling(A, B)",
    "anc(tom, D)",
    "anc(A, jim)",
    "pick(X)",
    "len([a, b, c, d], N)",
    "parent(nobody, X)",
    "anc(X, Y), male(X), female(Y)",
]


class TestDifferentialEquivalence:
    """Compiled machine == interpreter on every goal, answers in order."""

    @pytest.mark.parametrize("goal_text", DIFFERENTIAL_GOALS)
    def test_same_solution_sequences(self, goal_text):
        vm, kb = make_vm(FAMILY)
        machine = PrologMachine(kb, unknown_predicates="fail")
        goal = read_term(goal_text)
        names = [v.name for v in variables(goal) if not v.is_anonymous()]
        interpreted = [
            tuple(term_to_string(s[n]) for n in names)
            for s in machine.solve(goal)
        ]
        compiled = vm_answers(vm, goal_text)
        assert compiled == interpreted, goal_text

    def test_random_ground_queries(self):
        vm, kb = make_vm(FAMILY)
        machine = PrologMachine(kb, unknown_predicates="fail")
        rng = random.Random(5)
        people = ["tom", "bob", "liz", "ann", "pat", "jim", "joe", "zzz"]
        for _ in range(60):
            a, b = rng.choice(people), rng.choice(people)
            predicate = rng.choice(["parent", "father", "sibling", "anc"])
            goal_text = f"{predicate}({a}, {b})"
            compiled = bool(vm_answers(vm, goal_text))
            interpreted = machine.succeeds(goal_text)
            assert compiled == interpreted, goal_text


class TestWatchdog:
    def test_step_limit_on_runaway_recursion(self):
        vm, _ = make_vm("loop(X) :- loop(X).")
        vm.max_steps = 1000
        with pytest.raises(PrologError, match="steps"):
            list(vm.solve(read_term("loop(1)")))


class TestCompiledEngineOverDisk:
    def test_compiled_solve_through_clare(self):
        """The ZIP machine retrieving through the full CLARE pipeline."""
        from repro.storage import Residency

        kb = KnowledgeBase()
        kb.consult_text(
            " ".join(f"stock(item{i}, {i * 3})." for i in range(120))
            + " cheap(I) :- stock(I, N), N < 30.",
            module="data",
        )
        kb.module("data").pin(Residency.DISK)
        kb.sync_to_disk()
        machine = PrologMachine(kb, unknown_predicates="fail")
        compiled = sorted(
            term_to_string(s["I"]) for s in machine.compiled_solve_text("cheap(I)")
        )
        interpreted = sorted(
            term_to_string(s["I"]) for s in machine.solve_text("cheap(I)")
        )
        assert compiled == interpreted
        assert len(compiled) == 10  # 0..27 by threes
        assert machine.stats.retrievals > 0  # the CRS did the fetching
