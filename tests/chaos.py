"""Chaos/differential harness for the elastic cluster.

One :class:`ChaosDriver` runs seeded loadgen-style traffic (reads,
asserts, retracts) against a replicated :class:`~repro.cluster.Fleet`
*and* a single-server oracle, while an injectable
:class:`FaultSchedule` kills, restarts, slows, and live-migrates
replicas at predetermined steps.  Every compared read must match the
oracle exactly (zero wrong answers); writes count as applied only when
the fleet acknowledged them, and the final sweep proves none was lost.

Determinism: all choices (operation mix, goals, fault targets' replica
indices, client backoff jitter) flow from one ``random.Random(seed)``;
the driver is single-threaded — each step completes before the next —
so a given (program, schedule, seed) triple replays identically.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster import Fleet, FleetClient, ShardedRetrievalServer
from repro.cluster.fleet import FleetWriteError
from repro.cluster.migrate import MigrationError, migrate_shard
from repro.net import BackoffPolicy, DeadlineExceeded, NetError
from repro.storage import UnknownPredicateError
from repro.terms import Atom, Clause, Struct, Var, term_to_string
from repro.workloads.loadgen import percentile

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "ChaosReport",
    "ChaosDriver",
    "chaos_program",
]

#: Everything a traffic op may legitimately fail with under faults.
_TRANSIENT = (
    NetError, DeadlineExceeded, FleetWriteError,
    ConnectionError, OSError, MigrationError,
)


def chaos_program(num_preds: int = 3, facts_per_pred: int = 8) -> str:
    """A small all-facts program spread over several predicates."""
    lines = []
    for p in range(num_preds):
        for i in range(facts_per_pred):
            lines.append(f"p{p}(k{i}, v{p}_{i}).")
    return "\n".join(lines)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: at traffic step ``step``, do ``action``.

    ``action`` is one of ``kill`` / ``restart`` / ``migrate`` / ``slow``.
    The victim is ``replicas_for(shard)[replica % len]`` under the
    manifest current *at firing time* — schedules stay valid across the
    address churn that their own migrations cause.
    """

    step: int
    action: str
    shard: int = 0
    replica: int = 0
    #: ``slow`` only: injected per-request latency.
    delay_s: float = 0.05
    #: ``migrate`` only: push the new manifest to the client immediately
    #: instead of letting it discover the flip via STALE_MANIFEST.
    announce: bool = False

    def __post_init__(self):
        if self.action not in ("kill", "restart", "migrate", "slow"):
            raise ValueError(f"unknown fault action {self.action!r}")


FaultSchedule = list[FaultEvent]


@dataclass
class ChaosReport:
    """What one chaos run did and how the differential came out."""

    steps: int = 0
    reads: int = 0
    writes: int = 0
    retracts: int = 0
    #: Transient op failures (connection refused, deadline, no-ack).
    errors: int = 0
    #: Read comparisons whose candidate sets diverged from the oracle.
    wrong_answers: list[str] = field(default_factory=list)
    #: Acknowledged asserts missing at the final sweep.
    lost_writes: list[str] = field(default_factory=list)
    #: Final full-KB differential mismatches (per predicate).
    sweep_mismatches: list[str] = field(default_factory=list)
    faults_fired: dict[str, int] = field(default_factory=dict)
    #: Per-successful-op host latency, seconds.
    latencies_s: list[float] = field(default_factory=list)
    wall_clock_s: float = 0.0

    @property
    def ops(self) -> int:
        return self.reads + self.writes + self.retracts

    @property
    def error_rate(self) -> float:
        return self.errors / self.ops if self.ops else 0.0

    @property
    def availability(self) -> float:
        return 1.0 - self.error_rate

    def latency_s(self, fraction: float) -> float:
        return percentile(self.latencies_s, fraction)

    def summary(self) -> str:
        return (
            f"ops={self.ops} (r={self.reads} w={self.writes} "
            f"d={self.retracts}) errors={self.errors} "
            f"({self.error_rate:.2%}) wrong={len(self.wrong_answers)} "
            f"lost={len(self.lost_writes)} faults={self.faults_fired} "
            f"p50={self.latency_s(0.5) * 1e3:.1f}ms "
            f"p99={self.latency_s(0.99) * 1e3:.1f}ms"
        )


def _candidate_set(result) -> list[str]:
    return sorted(str(clause) for clause in result.candidates)


class ChaosDriver:
    """Differential chaos: fleet vs oracle under a fault schedule."""

    def __init__(
        self,
        program: str,
        schedule: FaultSchedule,
        *,
        seed: int = 0,
        steps: int = 80,
        num_shards: int = 2,
        replicas: int = 2,
        write_ratio: float = 0.35,
        workdir: str | Path = "",
        deadline_s: float = 10.0,
    ):
        self.program = program
        self.schedule = sorted(schedule, key=lambda e: e.step)
        self.seed = seed
        self.steps = steps
        self.num_shards = num_shards
        self.replicas = replicas
        self.write_ratio = write_ratio
        self.workdir = Path(workdir) if workdir else None
        self.deadline_s = deadline_s
        self.rng = random.Random(seed)
        self.report = ChaosReport()
        #: ground facts currently live (program + acked asserts,
        #: minus acked retracts) — read targets and retract victims.
        self._live: list[Clause] = []
        #: every assert the fleet acknowledged, for the lost-write check.
        self._acked: list[Clause] = []
        self._counter = 0
        self._preds: list[tuple[str, int]] = []

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> ChaosReport:
        oracle = ShardedRetrievalServer(1)
        oracle.consult_text(self.program)
        fleet = Fleet(
            self.program,
            num_shards=self.num_shards,
            replicas=self.replicas,
        )
        fleet.start()
        client = FleetClient(
            fleet.manifest,
            fleet.router,
            read_deadline_s=self.deadline_s,
            write_deadline_s=self.deadline_s,
            failover_opts={
                "rng": random.Random(self.seed + 1),
                "backoff": BackoffPolicy(
                    base_s=0.005, cap_s=0.05, max_retries=2
                ),
                "connect_timeout_s": 2.0,
            },
        )
        self._seed_live_pool(oracle)
        begin = time.monotonic()
        try:
            pending = list(self.schedule)
            for step in range(self.steps):
                while pending and pending[0].step <= step:
                    self._fire(pending.pop(0), fleet, client)
                self._traffic_step(step, fleet, client, oracle)
            self._heal(fleet, client)
            self._final_sweep(client, oracle)
        finally:
            self.report.wall_clock_s = time.monotonic() - begin
            self.report.steps = self.steps
            client.close()
            fleet.stop()
        return self.report

    def _seed_live_pool(self, oracle: ShardedRetrievalServer) -> None:
        for shard in oracle.shards:
            for store in shard.kb:
                self._preds.append(store.indicator)
                for clause in store.clauses():
                    self._live.append(clause)
        self._preds.sort()
        self._live.sort(key=str)

    # -- faults --------------------------------------------------------------

    def _fire(
        self, event: FaultEvent, fleet: Fleet, client: FleetClient
    ) -> None:
        manifest = fleet.manifest
        group = manifest.replicas_for(event.shard)
        address = group[event.replica % len(group)]
        node = fleet.nodes.get(address)
        fired = False
        if event.action == "kill" and node is not None and node.alive:
            live = [a for a in group if fleet.nodes[a].alive]
            if len(live) > 1:  # never take a shard fully dark
                fleet.kill(address)
                fired = True
        elif event.action == "restart" and node is not None and not node.alive:
            fleet.restart(address, workdir=self._fault_dir(event))
            client.clear_stale(address)
            fired = True
        elif event.action == "slow" and node is not None and node.alive:
            fleet.slow(address, event.delay_s)
            fired = True
        elif event.action == "migrate" and node is not None and node.alive:
            migrate_shard(
                fleet, event.shard, address, self._fault_dir(event)
            )
            if event.announce:
                client.adopt_manifest(fleet.manifest)
            fired = True
        if fired:
            self.report.faults_fired[event.action] = (
                self.report.faults_fired.get(event.action, 0) + 1
            )

    def _fault_dir(self, event: FaultEvent) -> Path:
        import tempfile

        if self.workdir is None:
            return Path(tempfile.mkdtemp(prefix="clare-chaos-"))
        path = self.workdir / f"step{event.step}-{event.action}"
        path.mkdir(parents=True, exist_ok=True)
        return path

    # -- traffic -------------------------------------------------------------

    def _traffic_step(self, step, fleet, client, oracle) -> None:
        roll = self.rng.random()
        if roll < self.write_ratio:
            if self.rng.random() < 0.3 and len(self._live) > len(self._preds):
                self._do_retract(client, oracle)
            else:
                self._do_assert(client, oracle)
        else:
            self._do_read(step, client, oracle)

    def _do_assert(self, client, oracle) -> None:
        name, arity = self.rng.choice(self._preds)
        self._counter += 1
        args = tuple(
            Atom(f"w{self._counter}_{position}") for position in range(arity)
        )
        clause = Clause(head=Struct(name, args), body=())
        self.report.writes += 1
        begin = time.monotonic()
        try:
            client.assertz(clause)
        except _TRANSIENT:
            self.report.errors += 1
            return
        self.report.latencies_s.append(time.monotonic() - begin)
        oracle.assertz(clause)
        self._live.append(clause)
        self._acked.append(clause)

    def _do_retract(self, client, oracle) -> None:
        victim = self.rng.choice(self._live)
        self.report.retracts += 1
        begin = time.monotonic()
        try:
            removed = client.retract(victim)
        except _TRANSIENT:
            self.report.errors += 1
            return
        self.report.latencies_s.append(time.monotonic() - begin)
        if removed is None:
            return
        # The victim is ground, so oracle and fleet must pick the same
        # clause (structural equality) regardless of clause order.
        oracle.retract_matching(victim)
        self._live.remove(victim)
        if victim in self._acked:
            self._acked.remove(victim)

    def _do_read(self, step, client, oracle) -> None:
        if self.rng.random() < 0.6 and self._live:
            # Keyed lookup: first arg from a live fact, rest open.
            target = self.rng.choice(self._live).head
            goal = Struct(
                target.functor,
                (target.args[0],)
                + tuple(Var(f"R{i}") for i in range(1, len(target.args))),
            )
        else:
            name, arity = self.rng.choice(self._preds)
            goal = Struct(
                name, tuple(Var(f"Q{i}") for i in range(arity))
            )
        self.report.reads += 1
        begin = time.monotonic()
        try:
            got = client.retrieve(goal)
        except _TRANSIENT:
            self.report.errors += 1
            return
        except UnknownPredicateError:
            self.report.errors += 1
            return
        self.report.latencies_s.append(time.monotonic() - begin)
        want = oracle.retrieve(goal)
        got_set, want_set = _candidate_set(got), _candidate_set(want)
        if got_set != want_set:
            self.report.wrong_answers.append(
                f"step {step}: {term_to_string(goal)} -> fleet "
                f"{got_set} != oracle {want_set}"
            )

    # -- end-of-run verification ---------------------------------------------

    def _heal(self, fleet: Fleet, client: FleetClient) -> None:
        """Restart every dead replica so the sweep sees the whole fleet."""
        for address, node in sorted(fleet.nodes.items()):
            if not node.alive:
                fleet.restart(address)
                client.clear_stale(address)
        client.adopt_manifest(fleet.manifest)

    def _final_sweep(self, client: FleetClient, oracle) -> None:
        """Full-KB differential + explicit no-lost-acked-writes check."""
        for name, arity in self._preds:
            goal = Struct(name, tuple(Var(f"S{i}") for i in range(arity)))
            got = _candidate_set(client.retrieve(goal))
            want = _candidate_set(oracle.retrieve(goal))
            if got != want:
                self.report.sweep_mismatches.append(
                    f"{name}/{arity}: fleet {got} != oracle {want}"
                )
            present = set(got)
            for clause in self._acked:
                if clause.indicator == (name, arity) and (
                    str(clause) not in present
                ):
                    self.report.lost_writes.append(str(clause))
