"""Encoder/decoder round-trip tests for the PIF format."""

import pytest
from hypothesis import given, settings

from repro.pif import (
    ITEM_SIZE,
    EncodedArgs,
    PIFDecoder,
    PIFEncoder,
    PIFError,
    SymbolTable,
    scan_items,
    tags,
)
from repro.terms import (
    Atom,
    Int,
    Struct,
    Var,
    make_list,
    read_term,
)
from tests.strategies import clause_heads, terms


@pytest.fixture
def symbols():
    return SymbolTable()


def roundtrip(term_text: str, symbols: SymbolTable, side: str = "db"):
    term = read_term(f"p({term_text})")
    encoder = PIFEncoder(symbols, side=side)
    encoded = encoder.encode_head(term)
    decoder = PIFDecoder(symbols)
    return decoder.decode_head(encoded)


class TestSimpleTerms:
    def test_atom(self, symbols):
        assert roundtrip("foo", symbols) == read_term("p(foo)")

    def test_integer(self, symbols):
        assert roundtrip("42", symbols) == read_term("p(42)")

    def test_negative_integer(self, symbols):
        assert roundtrip("-42", symbols) == read_term("p(-42)")

    def test_integer_range_limits(self, symbols):
        top = tags.INT_INLINE_MAX
        bottom = tags.INT_INLINE_MIN
        assert roundtrip(str(top), symbols) == read_term(f"p({top})")
        assert roundtrip(str(bottom), symbols) == read_term(f"p({bottom})")

    def test_integer_overflow_rejected(self, symbols):
        encoder = PIFEncoder(symbols)
        with pytest.raises(PIFError):
            encoder.encode_head(Struct("p", (Int(tags.INT_INLINE_MAX + 1),)))

    def test_float(self, symbols):
        assert roundtrip("3.25", symbols) == read_term("p(3.25)")

    def test_empty_list_is_single_item(self, symbols):
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(read_term("p([])"))
        items = scan_items(encoded.stream)
        assert len(items) == 1
        assert items[0].tag == tags.TAG_TLIST_INLINE_BASE


class TestVariables:
    def test_first_and_subsequent_db(self, symbols):
        encoder = PIFEncoder(symbols, side="db")
        encoded = encoder.encode_head(read_term("p(X, X, Y)"))
        item_tags = [i.tag for i in scan_items(encoded.stream)]
        assert item_tags == [
            tags.TAG_FIRST_DB_VAR,
            tags.TAG_SUB_DB_VAR,
            tags.TAG_FIRST_DB_VAR,
        ]

    def test_first_and_subsequent_query(self, symbols):
        encoder = PIFEncoder(symbols, side="query")
        encoded = encoder.encode_head(read_term("p(X, X)"))
        item_tags = [i.tag for i in scan_items(encoded.stream)]
        assert item_tags == [tags.TAG_FIRST_QUERY_VAR, tags.TAG_SUB_QUERY_VAR]

    def test_shared_offset(self, symbols):
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(read_term("p(X, Y, X)"))
        items = scan_items(encoded.stream)
        assert items[0].content == items[2].content  # X's slot
        assert items[1].content != items[0].content

    def test_anonymous(self, symbols):
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(read_term("p(_, _)"))
        item_tags = [i.tag for i in scan_items(encoded.stream)]
        assert item_tags == [tags.TAG_ANONYMOUS_VAR, tags.TAG_ANONYMOUS_VAR]
        assert encoded.var_names == ()

    def test_var_names_preserved(self, symbols):
        assert roundtrip("X, foo, X", symbols) == read_term("p(X, foo, X)")

    def test_var_inside_structure(self, symbols):
        assert roundtrip("f(X, g(X))", symbols) == read_term("p(f(X, g(X)))")

    def test_invalid_side(self, symbols):
        with pytest.raises(ValueError):
            PIFEncoder(symbols, side="both")


class TestComplexTerms:
    def test_struct_roundtrip(self, symbols):
        assert roundtrip("f(a, 1, g(x))", symbols) == read_term("p(f(a, 1, g(x)))")

    def test_list_roundtrip(self, symbols):
        assert roundtrip("[1, 2, 3]", symbols) == read_term("p([1, 2, 3])")

    def test_unterminated_list(self, symbols):
        assert roundtrip("[a, b | T]", symbols) == read_term("p([a, b | T])")

    def test_improper_list(self, symbols):
        assert roundtrip("[a | b]", symbols) == read_term("p([a | b])")

    def test_improper_list_uses_terminated_tag(self, symbols):
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(read_term("p([a | b])"))
        items = scan_items(encoded.stream)
        assert items[0].tag == tags.TAG_TLIST_INLINE_BASE | 1

    def test_nested(self, symbols):
        text = "f([g(1), [a]], h(X, [Y | T]))"
        assert roundtrip(text, symbols) == read_term(f"p({text})")

    def test_inline_struct_tag_carries_arity(self, symbols):
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(read_term("p(f(a, b, c))"))
        items = scan_items(encoded.stream)
        assert items[0].tag == tags.TAG_STRUCT_INLINE_BASE | 3
        assert len(items) == 4  # struct item + 3 elements

    def test_big_struct_pointer_form(self, symbols):
        arity = 40
        args = ", ".join(str(i) for i in range(arity))
        term = read_term(f"p(big({args}))")
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(term)
        items = scan_items(encoded.stream)
        assert len(items) == 1
        assert items[0].tag == tags.TAG_STRUCT_PTR_BASE | 31
        assert items[0].extension is not None
        assert len(encoded.heap) > 0
        assert PIFDecoder(symbols).decode_head(encoded) == term

    def test_big_list_pointer_form(self, symbols):
        elements = [Int(i) for i in range(40)]
        term = Struct("p", (make_list(elements),))
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(term)
        items = scan_items(encoded.stream)
        assert items[0].tag == tags.TAG_TLIST_PTR_BASE | 31
        assert PIFDecoder(symbols).decode_head(encoded) == term

    def test_big_unterminated_list(self, symbols):
        elements = [Int(i) for i in range(35)]
        term = Struct("p", (make_list(elements, tail=Var("T")),))
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(term)
        items = scan_items(encoded.stream)
        assert items[0].tag == tags.TAG_ULIST_PTR_BASE | 31
        assert PIFDecoder(symbols).decode_head(encoded) == term

    def test_nested_big_terms(self, symbols):
        inner = Struct("g", tuple(Int(i) for i in range(35)))
        outer = Struct("p", (Struct("f", (inner, Atom("x"))),))
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(outer)
        assert PIFDecoder(symbols).decode_head(encoded) == outer


class TestEncodedArgs:
    def test_atom_head_empty_stream(self, symbols):
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(Atom("p"))
        assert encoded.stream == b""
        assert encoded.indicator == ("p", 0)

    def test_item_words_view(self, symbols):
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(read_term("p(7)"))
        words = encoded.item_words()
        assert words == [(tags.TAG_INT_BASE, 7)]

    def test_size_bytes(self, symbols):
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(read_term("p(a, b)"))
        assert encoded.size_bytes == 2 * ITEM_SIZE

    def test_encode_non_callable_rejected(self, symbols):
        encoder = PIFEncoder(symbols)
        with pytest.raises(PIFError):
            encoder.encode_head(Int(1))

    def test_encode_term_single(self, symbols):
        encoder = PIFEncoder(symbols)
        term = read_term("f(a, [1|X])")
        encoded = encoder.encode_term(term)
        assert PIFDecoder(symbols).decode_term(encoded) == term


class TestProperties:
    @settings(max_examples=250)
    @given(clause_heads())
    def test_head_roundtrip(self, head):
        symbols = SymbolTable()
        encoder = PIFEncoder(symbols)
        decoder = PIFDecoder(symbols)
        encoded = encoder.encode_head(head)
        assert decoder.decode_head(encoded) == head

    @settings(max_examples=250)
    @given(terms())
    def test_term_roundtrip(self, term):
        symbols = SymbolTable()
        encoder = PIFEncoder(symbols, side="query")
        decoder = PIFDecoder(symbols)
        encoded = encoder.encode_term(term)
        assert decoder.decode_term(encoded) == term

    @given(terms(include_variables=False))
    def test_ground_encoding_deterministic(self, term):
        symbols = SymbolTable()
        encoder = PIFEncoder(symbols)
        first = encoder.encode_term(term)
        second = encoder.encode_term(term)
        assert first.stream == second.stream
        assert first.heap == second.heap
