"""Unit tests for the cluster batch executor and its timing model."""

import pytest

from repro.cluster import (
    BatchExecutor,
    BatchStats,
    ShardedRetrievalServer,
    ShardingPolicy,
)
from repro.obs import Instrumentation
from repro.terms import read_term

PROGRAM = " ".join(
    [f"p(a{i}, b{i})." for i in range(24)]
    + [f"q(c{i})." for i in range(24)]
    + [f"r(d{i}, e{i}, f{i})." for i in range(24)]
)


def build(policy=ShardingPolicy.PREDICATE, cache_size=0, shards=3):
    obs = Instrumentation()
    server = ShardedRetrievalServer(shards, policy, cache_size=cache_size, obs=obs)
    server.consult_text(PROGRAM)
    return server, obs


class TestBatchStats:
    def test_wall_clock_is_max_over_shards(self):
        stats = BatchStats(goals=3, shard_busy_s={0: 0.2, 1: 0.5, 2: 0.1})
        assert stats.wall_clock_s == 0.5
        assert stats.serial_time_s == pytest.approx(0.8)
        assert stats.speedup == pytest.approx(0.8 / 0.5)

    def test_empty_batch_degenerates_gracefully(self):
        stats = BatchStats()
        assert stats.wall_clock_s == 0.0
        assert stats.serial_time_s == 0.0
        assert stats.speedup == 1.0


class TestBatchExecutor:
    def test_results_in_input_order(self):
        server, _ = build()
        goals = [read_term(t) for t in ["q(X)", "p(a3, Y)", "r(A, B, C)"]]
        batch = BatchExecutor(server).run(goals)
        assert len(batch) == 3
        for goal, result in zip(goals, batch.results):
            assert result.goal is goal
        assert len(batch.results[0]) == 24
        assert len(batch.results[1]) == 1
        assert len(batch.results[2]) == 24

    def test_single_goal_skips_the_pool(self):
        server, _ = build()
        batch = BatchExecutor(server).run([read_term("q(c5)")])
        assert len(batch) == 1 and len(batch.results[0]) == 1

    def test_empty_goal_list(self):
        server, _ = build()
        batch = BatchExecutor(server).run([])
        assert len(batch) == 0
        assert batch.stats.wall_clock_s == 0.0

    def test_busy_time_folds_per_shard_stats(self):
        server, _ = build(ShardingPolicy.ROUND_ROBIN, shards=4)
        goals = [read_term("p(X, Y)"), read_term("q(Z)")]
        batch = BatchExecutor(server).run(goals)
        stats = batch.stats
        # Every queried shard's filter time lands in the busy ledger;
        # the sum over shards equals the calls' total device time.
        device = sum(
            r.stats.serial_filter_time_s for r in batch.results
        )
        assert stats.serial_time_s == pytest.approx(device)
        assert stats.wall_clock_s <= stats.serial_time_s
        assert set(stats.shard_busy_s) <= {0, 1, 2, 3}

    def test_cached_repeats_cost_no_busy_time(self):
        server, _ = build(cache_size=8)
        goal = read_term("q(X)")
        executor = BatchExecutor(server)
        first = executor.run([goal])
        again = executor.run([read_term("q(X)")])
        assert first.stats.serial_time_s > 0.0
        assert again.stats.serial_time_s == 0.0  # pure cluster-cache hits
        assert again.stats.speedup == 1.0

    def test_batch_metrics_emitted(self):
        server, obs = build(ShardingPolicy.FIRST_ARG, shards=4)
        goals = [read_term(f"p(a{i}, X)") for i in range(6)]
        BatchExecutor(server).run(goals)
        registry = obs.registry
        assert registry.total("cluster.batch.runs") == 1
        assert registry.total("cluster.batch.goals") == 6
        assert registry.total("cluster.batch.serial_time_s") == pytest.approx(
            registry.total("cluster.batch.busy_s")
        )

    def test_forced_mode_flows_through(self):
        from repro.crs import SearchMode

        server, _ = build()
        batch = BatchExecutor(server).run(
            [read_term("p(a1, X)")], mode=SearchMode.BOTH
        )
        assert batch.results[0].stats.mode is SearchMode.BOTH


class TestInjectedClock:
    """The batch deadline is computed from the injected clock, so tests
    can drive time deterministically instead of racing real sleeps."""

    class RecordingServer:
        num_shards = 2

        def __init__(self):
            self.obs = Instrumentation()
            self.timeouts = []

        def retrieve(self, goal, mode=None, timeout=None):
            from repro.crs import RetrievalResult

            self.timeouts.append(timeout)
            return RetrievalResult(goal=goal, candidates=[], stats=None)

    def test_expired_clock_zeroes_the_goal_budget(self):
        server = self.RecordingServer()
        ticks = iter([0.0, 7.0])  # deadline calc, then the goal's check
        executor = BatchExecutor(server, clock=lambda: next(ticks))
        executor.run([read_term("p(a, X)")], timeout=5.0)
        assert server.timeouts == [0.0]

    def test_frozen_clock_passes_the_full_budget_through(self):
        server = self.RecordingServer()
        executor = BatchExecutor(server, clock=lambda: 0.0)
        executor.run([read_term("p(a, X)")], timeout=5.0)
        assert server.timeouts == [5.0]

    def test_no_timeout_never_consults_the_clock(self):
        server = self.RecordingServer()

        def explode():
            raise AssertionError("clock must not be read without a timeout")

        executor = BatchExecutor(server, clock=explode)
        executor.run([read_term("p(a, X)")])
        assert server.timeouts == [None]
