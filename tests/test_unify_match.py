"""Tests for partial test unification (Figure 1) at match levels 1-5.

The central invariants:

* soundness — a clause head that fully unifies with the query always
  passes the partial match, at every level, with or without cross-binding;
* monotonicity — raising the level never admits more clauses;
* level 5 rejects everything full unification rejects *for the term shapes
  the hardware distinguishes* (it is still allowed to over-accept).
"""

from hypothesis import given, settings

from repro.terms import read_term, rename_apart
from repro.unify import (
    HardwareOp,
    MatchLevel,
    PartialMatcher,
    match_clause_head,
    partial_match,
    unifiable,
)
from tests.strategies import clause_heads

ALL_LEVELS = list(MatchLevel)


def match(query: str, head: str, level=3, cross_binding=True) -> bool:
    return partial_match(
        read_term(query), read_term(head), level=level, cross_binding=cross_binding
    )


class TestSimpleTerms:
    def test_equal_atoms(self):
        assert match("p(a)", "p(a)")

    def test_distinct_atoms(self):
        assert not match("p(a)", "p(b)")

    def test_integers(self):
        assert match("p(3)", "p(3)")
        assert not match("p(3)", "p(4)")

    def test_floats(self):
        assert match("p(1.5)", "p(1.5)")
        assert not match("p(1.5)", "p(2.5)")

    def test_type_mismatch(self):
        assert not match("p(a)", "p(1)")
        assert not match("p(1)", "p(1.0)")

    def test_functor_mismatch_rejected(self):
        assert not match("p(a)", "q(a)")
        assert not match("p(a)", "p(a, b)")

    def test_atom_query_zero_arity(self):
        assert match("p", "p")
        assert not match("p", "q")


class TestVariableCases:
    def test_anonymous_skips(self):
        assert match("p(_)", "p(whatever)")
        assert match("p(a)", "p(_)")

    def test_db_variable_first_occurrence(self):
        assert match("p(a)", "p(X)")  # case 5a

    def test_query_variable_first_occurrence(self):
        assert match("p(X)", "p(a)")  # case 6a

    def test_db_variable_consistency(self):
        assert match("p(a, a)", "p(X, X)")  # 5a then 5b, consistent
        assert not match("p(a, b)", "p(X, X)")  # 5b mismatch

    def test_query_variable_consistency(self):
        assert match("p(X, X)", "p(a, a)")
        assert not match("p(X, X)", "p(a, b)")

    def test_married_couple_example(self):
        # The paper's shared-variable query: FS2 catches what SCW cannot.
        assert match(
            "married_couple(S, S)", "married_couple(smith, smith)"
        )
        assert not match(
            "married_couple(S, S)", "married_couple(smith, jones)"
        )

    def test_paper_cross_binding_example(self):
        # Query f(X,a,b) against clause f(A,a,A) (paper section 3.3.6):
        # the second occurrence of A requires chasing A -> X; the pair
        # unifies (X = b) and the filter must accept it.
        assert match("f(X, a, b)", "f(A, a, A)", cross_binding=True)

    def test_cross_binding_catches_inconsistency(self):
        # Query f(X,b,X) vs clause f(A,A,c): A = X, then X = b, then the
        # third argument compares the ultimate binding b against c.
        assert not match("f(X, b, X)", "f(A, A, c)", cross_binding=True)
        assert match("f(X, b, X)", "f(A, A, b)", cross_binding=True)

    def test_cross_binding_disabled_accepts(self):
        # Without cross-binding checks (the original level-3 algorithm)
        # the inconsistent example is a false drop.
        assert match("f(X, b, X)", "f(A, A, c)", cross_binding=False)

    def test_var_var_cycle(self):
        assert match("p(X, X)", "p(A, A)")
        assert match("p(X, Y)", "p(A, A)")
        assert match("p(X, X)", "p(A, B)")

    def test_same_name_both_sides(self):
        # Clause variables are standardised apart from query variables.
        assert match("p(X, a)", "p(X, X)")
        assert not match("p(b, a)", "p(X, X)")


class TestComplexTerms:
    def test_struct_level3(self):
        assert match("p(f(a, b))", "p(f(a, b))")
        assert not match("p(f(a, b))", "p(f(a, c))")
        assert not match("p(f(a))", "p(g(a))")
        assert not match("p(f(a))", "p(f(a, b))")

    def test_nested_ignored_at_level3(self):
        # Depth-2 contents are not compared at level 3: false drop.
        assert match("p(f(g(1)))", "p(f(g(2)))", level=3)
        assert not match("p(f(g(1)))", "p(f(g(2)))", level=4)

    def test_level2_ignores_elements(self):
        assert match("p(f(a))", "p(f(b))", level=2)
        assert not match("p(f(a))", "p(g(a))", level=2)
        assert not match("p(f(a))", "p(f(a, b))", level=2)

    def test_level1_type_only(self):
        assert match("p(a)", "p(b)", level=1)
        assert not match("p(a)", "p(1)", level=1)
        assert match("p(f(a))", "p(f(b))", level=1)
        assert not match("p(f(a))", "p(f(a, b))", level=1)  # arity in tag

    def test_level1_integer_nibble(self):
        # The in-line integer tag holds the most significant nibble, so
        # level 1 distinguishes coarse magnitude.
        assert match("p(1)", "p(2)", level=1)
        assert not match("p(1)", f"p({1 << 24})", level=1)

    def test_lists_terminated(self):
        assert match("p([1, 2])", "p([1, 2])")
        assert not match("p([1, 2])", "p([1, 3])")
        assert not match("p([1, 2])", "p([1, 2, 3])")

    def test_unlimited_list_rule(self):
        # Tail variable: compare until either counter is exhausted.
        assert match("p([1, 2 | T])", "p([1, 2, 3])")
        assert match("p([1, 2, 3])", "p([1 | T])")
        assert not match("p([1, 2 | T])", "p([2, 2, 3])")

    def test_variables_inside_structures(self):
        assert match("p(f(X, X))", "p(f(a, a))")
        assert not match("p(f(X, X))", "p(f(a, b))")

    def test_variable_shared_across_args_and_struct(self):
        assert not match("p(X, f(X))", "p(a, f(b))")
        assert match("p(X, f(X))", "p(a, f(a))")


class TestOpAccounting:
    def test_match_counts(self):
        outcome = match_clause_head(read_term("p(a, b)"), read_term("p(a, b)"))
        assert outcome.hit
        assert outcome.ops[HardwareOp.MATCH] == 2

    def test_store_and_fetch_counts(self):
        outcome = match_clause_head(read_term("p(X, X)"), read_term("p(a, a)"))
        assert outcome.hit
        assert outcome.ops[HardwareOp.QUERY_STORE] == 1
        assert outcome.ops[HardwareOp.QUERY_FETCH] == 1

    def test_db_store_counts(self):
        outcome = match_clause_head(read_term("p(a, b)"), read_term("p(X, Y)"))
        assert outcome.ops[HardwareOp.DB_STORE] == 2

    def test_cross_bound_fetch_counts(self):
        outcome = match_clause_head(
            read_term("f(X, a, b)"), read_term("f(A, a, A)")
        )
        assert outcome.ops[HardwareOp.DB_CROSS_BOUND_FETCH] == 1

    def test_miss_on_wrong_functor_counts_nothing(self):
        outcome = match_clause_head(read_term("p(a)"), read_term("q(a)"))
        assert not outcome.hit
        assert outcome.op_count() == 0


class TestMatcherReuse:
    def test_matcher_streams_many_clauses(self):
        matcher = PartialMatcher(read_term("p(X, X)"))
        assert matcher.match_head(read_term("p(a, a)")).hit
        assert not matcher.match_head(read_term("p(a, b)")).hit
        # State from previous clauses must not leak.
        assert matcher.match_head(read_term("p(b, b)")).hit

    def test_level5_forces_cross_binding(self):
        matcher = PartialMatcher(read_term("p(X)"), level=5, cross_binding=False)
        assert matcher.cross_binding


class TestProperties:
    @settings(max_examples=300)
    @given(clause_heads(), clause_heads())
    def test_soundness_all_levels(self, query, head):
        """Unifiable implies accepted, at every level and either binding mode."""
        if unifiable(query, rename_apart(head)):
            for level in ALL_LEVELS:
                for cross in (False, True):
                    assert partial_match(
                        query, head, level=level, cross_binding=cross
                    ), f"level {level}, cross={cross} dropped a true unifier"

    @settings(max_examples=300)
    @given(clause_heads(), clause_heads())
    def test_level_monotonicity(self, query, head):
        """Higher levels only filter more (with cross-binding fixed on)."""
        results = [
            partial_match(query, head, level=level, cross_binding=True)
            for level in ALL_LEVELS
        ]
        for looser, tighter in zip(results, results[1:]):
            assert looser or not tighter

    @settings(max_examples=300)
    @given(clause_heads(include_variables=False), clause_heads(include_variables=False))
    def test_ground_level4_exact(self, query, head):
        """On ground terms, level >= 4 matching equals unifiability."""
        assert partial_match(query, head, level=4) == unifiable(query, head)

    @settings(max_examples=200)
    @given(clause_heads(), clause_heads())
    def test_cross_binding_only_tightens(self, query, head):
        for level in (2, 3, 4):
            without = partial_match(query, head, level=level, cross_binding=False)
            with_cb = partial_match(query, head, level=level, cross_binding=True)
            assert without or not with_cb
