"""Unit tests for query-feature analysis (the planner's inputs)."""

from repro.crs import analyse_query
from repro.terms import read_term


class TestQueryFeatures:
    def test_ground_query(self):
        features = analyse_query(read_term("p(a, f(b), [1])"))
        assert features.ground
        assert features.variable_count == 0
        assert not features.has_shared_variables
        assert features.constant_arguments == 3
        assert not features.all_variable_arguments

    def test_open_query(self):
        features = analyse_query(read_term("p(X, Y, Z)"))
        assert not features.ground
        assert features.variable_count == 3
        assert features.all_variable_arguments
        assert not features.has_shared_variables

    def test_shared_variables_detected(self):
        features = analyse_query(read_term("married(S, S)"))
        assert features.has_shared_variables
        assert features.shared_variables == ["S"]

    def test_shared_variable_inside_structure(self):
        features = analyse_query(read_term("p(X, f(X))"))
        assert features.has_shared_variables
        assert features.constant_arguments == 1  # f(X) is not a variable

    def test_anonymous_never_shared(self):
        features = analyse_query(read_term("p(_, _, _)"))
        assert not features.has_shared_variables
        assert features.variable_count == 0

    def test_multiple_shared(self):
        features = analyse_query(read_term("p(A, B, A, B)"))
        assert features.shared_variables == ["A", "B"]

    def test_atom_query(self):
        features = analyse_query(read_term("halt"))
        assert features.ground
        assert features.arity == 0
        assert not features.all_variable_arguments

    def test_mixed_query(self):
        features = analyse_query(read_term("p(a, X)"))
        assert not features.ground
        assert features.constant_arguments == 1
        assert not features.all_variable_arguments
