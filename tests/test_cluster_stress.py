"""Concurrency stress: many client threads against one sharded server.

The invariants under fire:

* no lost results — every thread's every retrieval returns exactly the
  candidate set a single engine computes for that goal;
* no duplicate cache accounting — ``cache_hits + cache_misses`` equals
  the number of retrieve calls, exactly;
* the metrics registry agrees with the per-call stats — cluster-level
  retrieval/candidate counters equal what the calls themselves report,
  and shard-level engine counters equal the physical work recorded in
  the merged per-shard stats.
"""

import random
import threading

import pytest

from repro.cluster import BatchExecutor, ShardedRetrievalServer, ShardingPolicy
from repro.crs import ClauseRetrievalServer
from repro.obs import Instrumentation
from repro.storage import KnowledgeBase
from repro.terms import read_term

THREADS = 10
ROUNDS = 3

PROGRAM = " ".join(
    [f"edge(n{i}, n{(i * 7) % 23})." for i in range(40)]
    + [f"fact(v{i})." for i in range(30)]
    + ["edge(X, sink).", "pair(A, A).", "pair(p, q)."]
)

GOAL_TEXTS = [
    "edge(n3, X)",
    "edge(X, Y)",
    "edge(X, X)",
    "fact(v7)",
    "fact(Z)",
    "pair(W, W)",
    "pair(p, Q)",
    "edge(n11, n0)",
]


def expected_counts():
    kb = KnowledgeBase()
    kb.consult_text(PROGRAM)
    single = ClauseRetrievalServer(kb)
    return {
        text: sorted(str(c) for c in single.retrieve(read_term(text)).candidates)
        for text in GOAL_TEXTS
    }


def build_server(policy, cache_size=32):
    obs = Instrumentation()
    server = ShardedRetrievalServer(
        4, policy, cache_size=cache_size, obs=obs
    )
    server.consult_text(PROGRAM)
    return server, obs


@pytest.mark.parametrize("policy", list(ShardingPolicy))
def test_hammer_mixed_goals(policy):
    expected = expected_counts()
    server, obs = build_server(policy)
    results = []  # (goal_text, candidate_multiset, stats) per call
    results_lock = threading.Lock()
    errors = []

    def worker(seed):
        rng = random.Random(seed)
        local = []
        try:
            for _ in range(ROUNDS):
                goal_order = GOAL_TEXTS * 2  # repeats mix hits with misses
                rng.shuffle(goal_order)
                for text in goal_order:
                    result = server.retrieve(read_term(text))
                    local.append(
                        (text, sorted(str(c) for c in result.candidates),
                         result.stats)
                    )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
        with results_lock:
            results.extend(local)

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    calls = THREADS * ROUNDS * len(GOAL_TEXTS) * 2
    assert len(results) == calls

    # No lost or corrupted results: every call saw the full candidate set.
    for text, candidates, _ in results:
        assert candidates == expected[text], text

    # No duplicate (or dropped) cache accounting.
    assert server.cache_hits + server.cache_misses == calls
    assert server.cache_hits > 0 and server.cache_misses > 0
    registry = obs.registry
    assert registry.total("cluster.cache.hits") == server.cache_hits
    assert registry.total("cluster.cache.misses") == server.cache_misses

    # Registry totals equal the sum over per-call stats.
    assert registry.total("cluster.retrievals") == calls
    assert registry.total("cluster.candidates_returned") == sum(
        len(candidates) for _, candidates, _ in results
    )
    # Physical (miss) calls carry per-shard stats; every one of those
    # shard retrievals shows up in the shard engines' own counter...
    physical = [s for _, _, s in results if s.per_shard]
    assert registry.total("crs.retrievals") == sum(
        len(s.per_shard) for s in physical
    )
    # ...and the modelled device time the calls report is exactly what
    # the engines charged to the sim-time counter.
    assert registry.total("crs.sim_filter_time_s") == pytest.approx(
        sum(s.serial_filter_time_s for s in physical), rel=1e-9
    )
    assert registry.total("cluster.device_time_s") == pytest.approx(
        sum(s.serial_filter_time_s for s in physical), rel=1e-9
    )


def test_hammer_with_concurrent_updates():
    """Writers assert/retract while readers hammer: versions stay sane."""
    server, obs = build_server(ShardingPolicy.FIRST_ARG, cache_size=16)
    stop = threading.Event()
    errors = []

    def reader(seed):
        rng = random.Random(seed)
        try:
            while not stop.is_set():
                text = rng.choice(GOAL_TEXTS)
                result = server.retrieve(read_term(text))
                # Whatever the interleaving, a result is never torn: the
                # candidate list decodes to whole clauses of the goal's
                # own predicate.
                functor = text.split("(")[0]
                for clause in result.candidates:
                    assert str(clause).startswith(functor)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def writer():
        try:
            for i in range(40):
                server.assertz(read_term(f"fact(extra{i})"))
                if i % 3 == 0:
                    server.retract(read_term(f"fact(extra{i})"))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    readers = [threading.Thread(target=reader, args=(s,)) for s in range(8)]
    writers = [threading.Thread(target=writer) for _ in range(2)]
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    for t in readers:
        t.join()
    assert not errors
    # Steady state: retracted every third extra fact from two writers.
    final = server.retrieve(read_term("fact(Z)"))
    assert len(final) == 30 + 2 * (40 - 14)


@pytest.mark.slow
def test_batch_stress_no_lost_results():
    """A large shuffled batch returns every goal's answer, in order."""
    expected = expected_counts()
    server, obs = build_server(ShardingPolicy.PREDICATE, cache_size=0)
    executor = BatchExecutor(server, max_workers=8)
    rng = random.Random(1234)
    goal_order = GOAL_TEXTS * 25
    rng.shuffle(goal_order)
    goals = [read_term(text) for text in goal_order]
    batch = executor.run(goals)
    assert len(batch) == len(goals)
    for text, result in zip(goal_order, batch.results):
        assert sorted(str(c) for c in result.candidates) == expected[text]
    assert batch.stats.goals == len(goals)
    assert batch.stats.serial_time_s >= batch.stats.wall_clock_s
    assert obs.registry.total("cluster.batch.goals") == len(goals)
