"""Fuzzing and cross-cutting property tests.

These complement the per-module suites with adversarial inputs (random
bytes into decoders, random programs through the storage round-trip) and
end-to-end invariants over randomly generated knowledge bases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crs import ClauseRetrievalServer, SearchMode
from repro.pif import (
    ClauseFile,
    CompiledClause,
    PIFDecodeError,
    PIFDecoder,
    PIFError,
    SymbolTable,
)
from repro.pif.encoder import EncodedArgs
from repro.scw import CodewordScheme, SecondaryIndexFile
from repro.storage import KnowledgeBase, Residency
from repro.terms import Clause, ReaderError, read_program, rename_apart
from repro.unify import unifiable
from tests.strategies import clause_heads


class TestDecoderFuzz:
    @settings(max_examples=300)
    @given(st.binary(max_size=64))
    def test_decode_random_bytes_terminates_cleanly(self, blob):
        """Random bytes either decode or raise a decode-family error."""
        symbols = SymbolTable()
        symbols.intern_atom("a")
        encoded = EncodedArgs(indicator=("p", 1), stream=blob, heap=b"")
        decoder = PIFDecoder(symbols)
        try:
            decoder.decode_args(encoded)
        except (PIFDecodeError, ValueError, KeyError):
            pass  # rejection is the expected outcome for garbage

    @settings(max_examples=200)
    @given(st.binary(max_size=64), st.binary(max_size=32))
    def test_decode_random_heap(self, stream, heap):
        symbols = SymbolTable()
        encoded = EncodedArgs(indicator=("p", 1), stream=stream, heap=heap)
        try:
            PIFDecoder(symbols).decode_args(encoded)
        except (PIFDecodeError, ValueError, KeyError):
            pass

    @settings(max_examples=200)
    @given(st.binary(min_size=9, max_size=80))
    def test_record_from_random_bytes(self, blob):
        try:
            CompiledClause.from_bytes(blob, ("p", 1))
        except (PIFDecodeError, ValueError, KeyError, IndexError):
            pass


class TestReaderFuzz:
    @settings(max_examples=300)
    @given(st.text(max_size=40))
    def test_reader_terminates(self, text):
        """Arbitrary text parses or raises ReaderError — never hangs."""
        try:
            read_program(text)
        except ReaderError:
            pass


class TestStorageRoundTripProperty:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(clause_heads(arity=2), min_size=1, max_size=8))
    def test_clause_file_disk_roundtrip(self, heads):
        """Serialise a clause file, reload every record, decode, compare."""
        symbols = SymbolTable()
        clause_file = ClauseFile(("p", 2), symbols)
        kept = []
        for head in heads:
            try:
                clause_file.append(Clause(head))
                kept.append(head)
            except PIFError:
                pass  # oversized record
        image = clause_file.to_bytes()
        addresses = clause_file.record_addresses()
        decoder = PIFDecoder(symbols)
        for position, address in enumerate(addresses):
            record, _ = CompiledClause.from_bytes(image, ("p", 2), address)
            assert decoder.decode_head(record.head_encoded) == kept[position]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(clause_heads(arity=2), min_size=1, max_size=8))
    def test_index_image_matches_rebuilt(self, heads):
        symbols = SymbolTable()
        clause_file = ClauseFile(("p", 2), symbols)
        for head in heads:
            try:
                clause_file.append(Clause(head))
            except PIFError:
                pass
        if len(clause_file) == 0:
            return
        scheme = CodewordScheme(width=64)
        first = SecondaryIndexFile.build(clause_file, scheme)
        second = SecondaryIndexFile.build(clause_file, scheme)
        assert first.to_bytes() == second.to_bytes()


class TestModeEquivalenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(clause_heads(arity=2), min_size=2, max_size=10),
        clause_heads(arity=2),
    )
    def test_all_modes_agree(self, heads, query):
        """The four CRS modes return the same resolvent set, always."""
        kb = KnowledgeBase()
        kept = 0
        for head in heads:
            try:
                kb.add_clause(Clause(head), module="data")
                kept += 1
            except PIFError:
                pass
        if kept == 0:
            return
        kb.module("data").pin(Residency.DISK)
        kb.sync_to_disk()
        crs = ClauseRetrievalServer(kb)
        expected = {
            str(clause)
            for clause in kb.clauses(("p", 2))
            if unifiable(query, rename_apart(clause.head))
        }
        for mode in SearchMode:
            got = {str(c) for c, _ in crs.solutions(query, mode=mode)}
            assert got == expected, f"mode {mode} diverged"

    def test_incremental_index_equals_rebuild(self):
        """Appends through a live index must match a from-scratch build."""
        kb = KnowledgeBase()
        kb.consult_text("p(a). p(b).", module="data")
        store = kb.store(("p", 1))
        _ = store.index  # force the index alive
        from repro.terms import read_term

        kb.assertz(read_term("p(c)"))
        kb.assertz(read_term("p(f(d))"))
        live = store.index.to_bytes()
        store.invalidate_index()
        rebuilt = store.index.to_bytes()
        assert live == rebuilt
