"""Fleet durability and cold-client bootstrap.

Two satellite behaviours of the WAL subsystem, proven over real
sockets:

* ``FleetClient.connect`` — a client holding nothing but one replica's
  address fetches the manifest over the wire and discovers placement by
  broadcasting each first-seen predicate, so no out-of-band router
  hand-off is needed.
* ``durability_root`` — every fleet node gets its own WAL-backed store;
  acked writes survive killing a replica *and* stopping the whole
  fleet, and replica resync catch-up falls back to WAL-shipping when
  the in-memory mutation deque has already evicted the delta.
"""

from __future__ import annotations

import pytest

from repro.cluster import Fleet, FleetClient
from repro.obs import Instrumentation
from repro.storage import UnknownPredicateError, kb_fingerprint
from repro.terms import read_term, term_to_string

PROGRAM = "f(a). f(b). g(1). h(x, y)."


def _candidate_set(client, goal_text):
    result = client.retrieve(read_term(goal_text))
    return sorted(str(c) for c in result.candidates)


def _node_fingerprint(node):
    return kb_fingerprint(node.engine.shards[0].kb)


class TestColdClientBootstrap:
    @pytest.fixture
    def fleet(self):
        with Fleet(PROGRAM, num_shards=2, replicas=1) as fleet:
            yield fleet

    def _connect(self, fleet) -> FleetClient:
        return FleetClient.connect(fleet.live_addresses()[0])

    def test_cold_read_discovers_placement(self, fleet):
        with self._connect(fleet) as client:
            assert _candidate_set(client, "f(X)") == ["f(a).", "f(b)."]
            # Second read on the same predicate routes warm: the
            # discovery counter does not move again.
            before = client.obs.registry.total("cluster.fleet.discoveries")
            assert _candidate_set(client, "f(b)") == ["f(b)."]
            after = client.obs.registry.total("cluster.fleet.discoveries")
            assert after == before

    def test_unknown_predicate_still_raises(self, fleet):
        with self._connect(fleet) as client:
            with pytest.raises(UnknownPredicateError):
                client.retrieve(read_term("nope(X)"))

    def test_cold_write_and_readback(self, fleet):
        with self._connect(fleet) as client:
            client.assertz(read_term("f(c)"))
            assert _candidate_set(client, "f(X)") == [
                "f(a).", "f(b).", "f(c)."
            ]

    def test_cold_retract(self, fleet):
        with self._connect(fleet) as client:
            removed = client.retract(read_term("f(a)"))
            assert removed is not None
            assert term_to_string(removed.head) == "f(a)"
            assert _candidate_set(client, "f(X)") == ["f(b)."]

    def test_cold_retract_of_unknown_predicate(self, fleet):
        with self._connect(fleet) as client:
            assert client.retract(read_term("nope(x)")) is None


class TestFleetDurability:
    def _fleet(self, root, **kwargs):
        kwargs.setdefault("num_shards", 1)
        kwargs.setdefault("replicas", 2)
        # A tiny mutation deque forces resync catch-up onto the WAL.
        kwargs.setdefault("engine_opts", {"mutation_log_size": 2})
        kwargs.setdefault("durability_opts", {"auto_compact": False})
        kwargs.setdefault("obs", Instrumentation(enabled=True))
        return Fleet(PROGRAM, durability_root=root, **kwargs)

    def test_killed_replica_resyncs_over_wal(self, tmp_path):
        with self._fleet(tmp_path / "fleet") as fleet:
            addr_a, addr_b = fleet.manifest.replicas_for(0)
            with FleetClient.connect(addr_a) as client:
                for i in range(3):
                    client.assertz(read_term(f"w(pre{i})"))
                fleet.kill(addr_b)
                client.mark_stale(addr_b)
                # Far more writes than the deque holds: the restart's
                # catch-up delta must come from the survivor's WAL.
                for i in range(8):
                    client.assertz(read_term(f"w(post{i})"))
                registry = fleet.obs.registry
                assert registry.total("wal.shipped_records") == 0
                fleet.restart(addr_b)
                client.clear_stale(addr_b)
                node_a, node_b = fleet.node_at(addr_a), fleet.node_at(addr_b)
                # Content equality is the contract; the version counters
                # are node-local (a snapshot adoption is one `reload`).
                assert _node_fingerprint(node_b) == _node_fingerprint(node_a)
                # The catch-up delta really was served off the survivor's
                # WAL (the deque holds 2, the replica missed 8) and the
                # resync was incremental — no snapshot copy happened.
                assert registry.total("wal.shipped_records") >= 8
                # The resynced replica answers reads again.
                assert len(_candidate_set(client, "w(X)")) == 11

    def test_whole_fleet_survives_stop_and_restart(self, tmp_path):
        root = tmp_path / "fleet"
        with self._fleet(root) as fleet:
            with FleetClient.connect(fleet.live_addresses()[0]) as client:
                for i in range(5):
                    client.assertz(read_term(f"w(k{i})"))
                want = _node_fingerprint(
                    fleet.node_at(fleet.live_addresses()[0])
                )

        # A brand-new fleet over the same root: every node recovers its
        # own store (the program partition is NOT re-seeded — doing so
        # would double every clause).
        with self._fleet(root) as reborn:
            for address in reborn.live_addresses():
                node = reborn.node_at(address)
                assert node.engine.recovered is not None
                assert not node.engine.recovered.empty
                assert _node_fingerprint(node) == want
            with FleetClient.connect(reborn.live_addresses()[0]) as client:
                assert _candidate_set(client, "w(X)") == [
                    f"w(k{i})." for i in range(5)
                ]
                # And the recovered fleet keeps taking writes.
                client.assertz(read_term("w(k5)"))
                assert len(_candidate_set(client, "w(X)")) == 6
