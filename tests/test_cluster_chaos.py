"""Chaos/differential acceptance: the elastic cluster under faults.

Each test runs :class:`tests.chaos.ChaosDriver` — seeded mixed traffic
against a replicated fleet and a single-server oracle — under a fixed
fault schedule, and holds the cluster to the contract:

* **zero wrong answers** — every compared read matches the oracle
  exactly, including reads served mid-failover and mid-migration;
* **no lost acknowledged writes** — every assert the fleet acked is
  present at the final sweep, on every predicate, fleet-wide;
* **bounded unavailability** — transient errors (refused connections,
  deadlines, un-acked writes) stay under 1% of operations *with*
  retries in play.

Schedules are deterministic (seeded rng, single-threaded driver), so a
failure here replays identically under the same (schedule, seed) pair.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from tests.chaos import ChaosDriver, FaultEvent, chaos_program
from tests.strategies import fault_schedules

STEPS = 120


def run_chaos(schedule, tmp_path, *, seed=0, steps=STEPS, **kwargs):
    driver = ChaosDriver(
        chaos_program(),
        schedule,
        seed=seed,
        steps=steps,
        workdir=tmp_path,
        **kwargs,
    )
    return driver.run()


def assert_contract(report):
    assert report.wrong_answers == []
    assert report.lost_writes == []
    assert report.sweep_mismatches == []
    assert report.error_rate < 0.01, report.summary()
    assert report.ops == report.steps


class TestSchedules:
    def test_no_faults_baseline_is_exact(self, tmp_path):
        report = run_chaos([], tmp_path, seed=7)
        assert_contract(report)
        assert report.errors == 0
        assert report.faults_fired == {}

    def test_kill_restart_churn(self, tmp_path):
        """Schedule 1: replicas of both shards crash and come back."""
        schedule = [
            FaultEvent(step=10, action="kill", shard=0, replica=0),
            FaultEvent(step=35, action="restart", shard=0, replica=0),
            FaultEvent(step=50, action="kill", shard=1, replica=1),
            FaultEvent(step=80, action="restart", shard=1, replica=1),
            FaultEvent(step=90, action="kill", shard=0, replica=1),
            FaultEvent(step=110, action="restart", shard=0, replica=1),
        ]
        report = run_chaos(schedule, tmp_path, seed=1)
        assert_contract(report)
        assert report.faults_fired["kill"] == 3
        assert report.faults_fired["restart"] == 3

    def test_double_live_migration(self, tmp_path):
        """Schedule 2: both shards migrate mid-traffic — once with the
        client discovering the flip via STALE_MANIFEST, once told."""
        schedule = [
            FaultEvent(step=20, action="migrate", shard=0, replica=0),
            FaultEvent(
                step=60, action="migrate", shard=1, replica=1, announce=True
            ),
            FaultEvent(step=90, action="migrate", shard=0, replica=1),
        ]
        report = run_chaos(schedule, tmp_path, seed=2)
        assert_contract(report)
        assert report.faults_fired["migrate"] == 3

    def test_mixed_kill_slow_migrate(self, tmp_path):
        """Schedule 3: a slowed replica, a crash, a migration, and a
        late restart, all interleaved."""
        schedule = [
            FaultEvent(step=8, action="slow", shard=0, replica=0,
                       delay_s=0.02),
            FaultEvent(step=25, action="kill", shard=1, replica=0),
            FaultEvent(step=45, action="migrate", shard=0, replica=1),
            FaultEvent(step=70, action="restart", shard=1, replica=0),
            FaultEvent(step=85, action="kill", shard=0, replica=0),
            FaultEvent(step=105, action="restart", shard=0, replica=0),
        ]
        report = run_chaos(schedule, tmp_path, seed=3)
        assert_contract(report)
        for action in ("slow", "kill", "migrate", "restart"):
            assert report.faults_fired.get(action, 0) >= 1, report.summary()

    def test_same_schedule_same_seed_replays_identically(self, tmp_path):
        schedule = [
            FaultEvent(step=10, action="kill", shard=0, replica=0),
            FaultEvent(step=30, action="restart", shard=0, replica=0),
        ]
        first = run_chaos(schedule, tmp_path / "a", seed=11, steps=40)
        second = run_chaos(schedule, tmp_path / "b", seed=11, steps=40)
        assert (first.reads, first.writes, first.retracts) == (
            second.reads, second.writes, second.retracts
        )
        assert first.faults_fired == second.faults_fired


class TestReportAccounting:
    def test_availability_and_percentiles(self, tmp_path):
        report = run_chaos([], tmp_path, seed=5, steps=30)
        assert report.availability == 1.0 - report.error_rate
        assert 0.0 <= report.latency_s(0.5) <= report.latency_s(0.99)
        summary = report.summary()
        assert "ops=30" in summary and "wrong=0" in summary

    def test_unknown_fault_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(step=0, action="explode")


@pytest.mark.slow
class TestGeneratedSchedules:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(fault_schedules(max_steps=40))
    def test_any_safe_schedule_upholds_the_contract(
        self, tmp_path_factory, schedule
    ):
        workdir = tmp_path_factory.mktemp("chaos-hypothesis")
        report = run_chaos(schedule, workdir, seed=13, steps=40)
        assert report.wrong_answers == []
        assert report.lost_writes == []
        assert report.sweep_mismatches == []
