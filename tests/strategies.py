"""Shared hypothesis strategies for generating random Prolog terms."""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.terms import Atom, Float, Int, Struct, Term, Var, make_list

#: PIF in-line integers carry 28 bits (4-bit tag nibble + 24-bit content).
PIF_INT_MIN = -(2**27)
PIF_INT_MAX = 2**27 - 1


def atom_names() -> st.SearchStrategy[str]:
    # Built constructively (first char + tail) rather than filtered: a
    # rejection rate of ~30% here multiplies across the dozens of atoms
    # in a wide clause head and trips filter_too_much health checks.
    plain = st.builds(
        lambda head, tail: head + tail,
        st.sampled_from(string.ascii_lowercase),
        st.text(
            alphabet=string.ascii_lowercase + string.digits + "_",
            max_size=7,
        ),
    )
    quoted = st.sampled_from(
        ["hello world", "Capitalised", "with'quote", "a\\b", "[]", "+", "=="]
    )
    return st.one_of(plain, quoted)


def var_names() -> st.SearchStrategy[str]:
    return st.one_of(
        st.sampled_from(["X", "Y", "Z", "Tail", "_G1", "Same_surname"]),
        st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=4),
    )


def atoms() -> st.SearchStrategy[Atom]:
    return atom_names().map(Atom)


def ints(
    min_value: int = PIF_INT_MIN, max_value: int = PIF_INT_MAX
) -> st.SearchStrategy[Int]:
    return st.integers(min_value=min_value, max_value=max_value).map(Int)


def floats() -> st.SearchStrategy[Float]:
    return st.floats(allow_nan=False, allow_infinity=False, width=32).map(
        lambda v: Float(float(v))
    )


def variables_strategy(include_anonymous: bool = True) -> st.SearchStrategy[Var]:
    named = var_names().map(Var)
    if include_anonymous:
        return st.one_of(named, st.just(Var("_")))
    return named


def constants() -> st.SearchStrategy[Term]:
    return st.one_of(atoms(), ints(), floats())


def terms(
    max_depth: int = 3,
    max_arity: int = 4,
    include_variables: bool = True,
    include_anonymous: bool = True,
) -> st.SearchStrategy[Term]:
    """Random terms: constants, variables, structures and lists."""
    leaves: list[st.SearchStrategy[Term]] = [atoms(), ints(), floats()]
    if include_variables:
        leaves.append(variables_strategy(include_anonymous))
    base = st.one_of(*leaves)

    def extend(children: st.SearchStrategy[Term]) -> st.SearchStrategy[Term]:
        structs = st.builds(
            lambda name, args: Struct(name, tuple(args)),
            atom_names().filter(lambda n: n not in (".", ",", "[]", "{}")),
            st.lists(children, min_size=1, max_size=max_arity),
        )
        proper_lists = st.lists(children, min_size=0, max_size=max_arity).map(
            make_list
        )
        partial_lists = st.builds(
            lambda items, tail: make_list(items, tail=tail),
            st.lists(children, min_size=1, max_size=max_arity),
            variables_strategy(include_anonymous=False)
            if include_variables
            else atoms(),
        )
        return st.one_of(structs, proper_lists, partial_lists)

    return st.recursive(base, extend, max_leaves=2**max_depth)


def ground_terms(max_depth: int = 3) -> st.SearchStrategy[Term]:
    return terms(max_depth=max_depth, include_variables=False)


def clause_heads(
    functor: str = "p", arity: int = 3, include_variables: bool = True
) -> st.SearchStrategy[Struct]:
    """Heads of a fixed predicate, for query-vs-clause matching tests."""
    arg = terms(max_depth=2, include_variables=include_variables)
    return st.builds(
        lambda args: Struct(functor, tuple(args)),
        st.lists(arg, min_size=arity, max_size=arity),
    )


# -- cluster elasticity ------------------------------------------------------


def addresses() -> st.SearchStrategy[str]:
    """Distinct-looking ``host:port`` replica addresses."""
    return st.builds(
        lambda a, b, port: f"10.{a}.{b}.1:{port}",
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=1024, max_value=65535),
    )


def manifests(
    max_shards: int = 4, max_replicas: int = 3
) -> "st.SearchStrategy":
    """Valid :class:`~repro.cluster.ClusterManifest` placements.

    Every shard gets at least one replica and no address is reused
    anywhere in the manifest (the invariant the constructor enforces).
    """
    from repro.cluster import ClusterManifest
    from repro.cluster.routing import ShardingPolicy

    @st.composite
    def build(draw):
        num_shards = draw(st.integers(min_value=1, max_value=max_shards))
        policy = draw(st.sampled_from([p.value for p in ShardingPolicy]))
        version = draw(st.integers(min_value=0, max_value=1_000_000))
        pool = draw(
            st.lists(
                addresses(),
                min_size=num_shards,
                max_size=num_shards * max_replicas,
                unique=True,
            )
        )
        replicas: dict[int, tuple[str, ...]] = {
            shard: () for shard in range(num_shards)
        }
        # Deal the pool round-robin so every shard is non-empty.
        for position, address in enumerate(pool):
            shard = position % num_shards
            replicas[shard] = replicas[shard] + (address,)
        return ClusterManifest(
            num_shards=num_shards,
            policy=policy,
            version=version,
            replicas=replicas,
        )

    return build()


def fault_schedules(
    max_steps: int = 60,
    num_shards: int = 2,
    max_replicas: int = 2,
    max_events: int = 6,
) -> "st.SearchStrategy":
    """Chaos fault schedules for :class:`tests.chaos.ChaosDriver`.

    Generated schedules are *safe by construction*: a kill is only ever
    followed (never preceded) by its restart, at most one replica of a
    shard is down at a time, and migrations target live replicas — the
    driver additionally skips any event whose precondition fails, so an
    adversarial shrink cannot wedge the run.
    """
    from tests.chaos import FaultEvent

    @st.composite
    def build(draw):
        events = []
        down: dict[tuple[int, int], int] = {}  # (shard, replica) -> kill step
        count = draw(st.integers(min_value=1, max_value=max_events))
        step = 0
        for _ in range(count):
            step = draw(
                st.integers(min_value=step + 1, max_value=step + 10)
            )
            if step >= max_steps:
                break
            shard = draw(st.integers(min_value=0, max_value=num_shards - 1))
            replica = draw(
                st.integers(min_value=0, max_value=max_replicas - 1)
            )
            if (shard, replica) in down:
                events.append(
                    FaultEvent(step=step, action="restart",
                               shard=shard, replica=replica)
                )
                del down[(shard, replica)]
                continue
            action = draw(
                st.sampled_from(["kill", "migrate", "slow", "none"])
            )
            if action == "kill" and not any(s == shard for s, _ in down):
                events.append(
                    FaultEvent(step=step, action="kill",
                               shard=shard, replica=replica)
                )
                down[(shard, replica)] = step
            elif action == "migrate" and not any(
                s == shard for s, _ in down
            ):
                events.append(
                    FaultEvent(step=step, action="migrate", shard=shard,
                               replica=replica,
                               announce=draw(st.booleans()))
                )
            elif action == "slow":
                events.append(
                    FaultEvent(step=step, action="slow", shard=shard,
                               replica=replica, delay_s=0.005)
                )
        # Heal everything before the run ends so the final sweep sees a
        # fully live fleet even if the driver's own heal pass changes.
        for (shard, replica), kill_step in sorted(down.items()):
            step += 1
            events.append(
                FaultEvent(step=step, action="restart",
                           shard=shard, replica=replica)
            )
        return events

    return build()
