"""Unit tests for the PIF tag scheme (Table A1)."""

import pytest

from repro.pif import tags


class TestTagValues:
    """The tag byte values printed in Table A1."""

    def test_variable_tags(self):
        assert tags.TAG_ANONYMOUS_VAR == 0x20
        assert tags.TAG_FIRST_QUERY_VAR == 0x27
        assert tags.TAG_SUB_QUERY_VAR == 0x25
        assert tags.TAG_FIRST_DB_VAR == 0x26
        assert tags.TAG_SUB_DB_VAR == 0x24

    def test_simple_term_tags(self):
        assert tags.TAG_ATOM_PTR == 0x08
        assert tags.TAG_FLOAT_PTR == 0x09
        assert tags.TAG_INT_BASE == 0x10

    def test_complex_bases_match_bit_patterns(self):
        assert tags.TAG_STRUCT_INLINE_BASE == 0b011_00000
        assert tags.TAG_STRUCT_PTR_BASE == 0b010_00000
        assert tags.TAG_TLIST_INLINE_BASE == 0b111_00000
        assert tags.TAG_ULIST_INLINE_BASE == 0b101_00000
        assert tags.TAG_TLIST_PTR_BASE == 0b110_00000
        assert tags.TAG_ULIST_PTR_BASE == 0b100_00000


class TestClassification:
    def test_category_simple(self):
        assert tags.tag_category(0x08) == tags.TagCategory.ATOM
        assert tags.tag_category(0x09) == tags.TagCategory.FLOAT
        assert tags.tag_category(0x13) == tags.TagCategory.INTEGER

    def test_category_variables(self):
        assert tags.tag_category(0x20) == tags.TagCategory.ANONYMOUS
        assert tags.tag_category(0x27) == tags.TagCategory.FIRST_QUERY_VAR
        assert tags.tag_category(0x24) == tags.TagCategory.SUB_DB_VAR

    def test_category_complex(self):
        assert tags.tag_category(0x62) == tags.TagCategory.STRUCT_INLINE
        assert tags.tag_category(0x5F) == tags.TagCategory.STRUCT_PTR
        assert tags.tag_category(0xE0) == tags.TagCategory.TLIST_INLINE
        assert tags.tag_category(0xA1) == tags.TagCategory.ULIST_INLINE
        assert tags.tag_category(0xDF) == tags.TagCategory.TLIST_PTR
        assert tags.tag_category(0x9F) == tags.TagCategory.ULIST_PTR

    def test_unassigned_tag_rejected(self):
        with pytest.raises(ValueError):
            tags.tag_category(0x00)
        with pytest.raises(ValueError):
            tags.tag_category(0x30)

    def test_tag_arity(self):
        assert tags.tag_arity(0x62) == 2
        assert tags.tag_arity(0xE5) == 5
        with pytest.raises(ValueError):
            tags.tag_arity(0x08)

    def test_is_variable_tag(self):
        assert tags.is_variable_tag(0x20)
        assert tags.is_variable_tag(0x26)
        assert not tags.is_variable_tag(0x08)

    def test_is_pointer_tag(self):
        assert tags.is_pointer_tag(0x5F)  # struct pointer
        assert tags.is_pointer_tag(0xDF)  # terminated list pointer
        assert tags.is_pointer_tag(0x9F)  # unterminated list pointer
        assert not tags.is_pointer_tag(0x62)  # in-line struct
        assert not tags.is_pointer_tag(0x08)


class TestIntegerNibble:
    def test_small_positive(self):
        assert tags.int_tag_nibble(0) == 0
        assert tags.int_tag_nibble(123) == 0

    def test_large_positive(self):
        assert tags.int_tag_nibble(1 << 24) == 1
        assert tags.int_tag_nibble(tags.INT_INLINE_MAX) == 7

    def test_negative_two_complement(self):
        assert tags.int_tag_nibble(-1) == 0xF
        assert tags.int_tag_nibble(tags.INT_INLINE_MIN) == 0x8

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            tags.int_tag_nibble(tags.INT_INLINE_MAX + 1)
        with pytest.raises(ValueError):
            tags.int_tag_nibble(tags.INT_INLINE_MIN - 1)


class TestInventory:
    def test_all_inventory_tags_classify(self):
        for group, values in tags.tag_inventory().items():
            for tag in values:
                tags.tag_category(tag)  # must not raise

    def test_inventory_disjoint(self):
        seen: set[int] = set()
        for values in tags.tag_inventory().values():
            for tag in values:
                assert tag not in seen, f"tag 0x{tag:02x} appears twice"
                seen.add(tag)

    def test_inventory_magnitude_near_paper_claim(self):
        # The paper claims 107 supported types; our enumerable tag space
        # should be the same order of magnitude (see EXPERIMENTS.md).
        total = sum(len(v) for v in tags.tag_inventory().values())
        assert 80 <= total <= 160

    def test_tag_names_render(self):
        assert tags.tag_name(0x08) == "Atom Pointer"
        assert "arity 3" in tags.tag_name(0x63)
        assert "nibble" in tags.tag_name(0x12)
