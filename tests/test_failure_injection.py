"""Failure injection: malformed inputs, resource exhaustion, watchdogs."""

import pytest

from repro.disk import DiskFullError, DiskSim, DriveModel, DiskGeometry
from repro.fs2 import (
    FS2ProtocolError,
    ResultMemoryFull,
    SecondStageFilter,
    WCS_WORDS,
    WritableControlStore,
)
from repro.fs2.microcode import MicroProgram, assemble_search_program
from repro.pif import (
    PIFDecodeError,
    PIFDecoder,
    PIFEncoder,
    PIFError,
    SymbolTable,
    compile_clause,
    scan_items,
)
from repro.pif.encoder import EncodedArgs
from repro.terms import Clause, Int, Struct, clause_from_term, read_term


class TestMalformedPIF:
    def test_truncated_item(self):
        with pytest.raises(PIFDecodeError):
            scan_items(b"\x08\x00")

    def test_truncated_extension(self):
        # A struct-pointer tag without its 4-byte extension.
        with pytest.raises(PIFDecodeError):
            scan_items(bytes([0x5F, 0, 0, 1]))

    def test_unassigned_tag(self):
        symbols = SymbolTable()
        encoded = EncodedArgs(
            indicator=("p", 1), stream=bytes([0x00, 0, 0, 0])
        )
        with pytest.raises((PIFDecodeError, ValueError)):
            PIFDecoder(symbols).decode_args(encoded)

    def test_dangling_symbol_reference(self):
        symbols = SymbolTable()
        encoded = EncodedArgs(
            indicator=("p", 1), stream=bytes([0x08, 0, 0, 99])
        )
        with pytest.raises(KeyError):
            PIFDecoder(symbols).decode_args(encoded)

    def test_heap_pointer_out_of_range(self):
        symbols = SymbolTable()
        symbols.intern_atom("f")
        stream = bytes([0x5F, 0, 0, 0]) + (999).to_bytes(4, "big")
        encoded = EncodedArgs(indicator=("p", 1), stream=stream, heap=b"")
        with pytest.raises(PIFDecodeError):
            PIFDecoder(symbols).decode_args(encoded)

    def test_arity_mismatch_detected(self):
        symbols = SymbolTable()
        encoder = PIFEncoder(symbols)
        encoded = encoder.encode_head(read_term("p(a)"))
        lying = EncodedArgs(
            indicator=("p", 2),  # claims two arguments, stream has one
            stream=encoded.stream,
            heap=encoded.heap,
        )
        with pytest.raises(PIFDecodeError):
            PIFDecoder(symbols).decode_head(lying)


class TestResourceLimits:
    def test_oversized_clause_rejected_at_append(self):
        symbols = SymbolTable()
        big = ", ".join(f"a{i}" for i in range(40))
        clause = clause_from_term(read_term(f"p([{big}], [{big}], [{big}], [{big}], [{big}])"))
        from repro.pif import ClauseFile

        clause_file = ClauseFile(("p", 5), symbols)
        with pytest.raises(PIFError):
            clause_file.append(clause)

    def test_result_memory_overflow_in_search(self):
        """More than 64 satisfiers in one FS2 search call overflows the RM."""
        symbols = SymbolTable()
        records = [
            compile_clause(Clause(Struct("p", (Int(i),))), symbols).to_bytes()
            for i in range(65)
        ]
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(read_term("p(X)"))  # everything matches
        with pytest.raises(ResultMemoryFull):
            fs2.search(records)

    def test_crs_chunks_around_result_memory(self):
        """The CRS splits search calls so RM overflow cannot happen."""
        from repro.crs import ClauseRetrievalServer, SearchMode
        from repro.storage import KnowledgeBase, Residency

        kb = KnowledgeBase()
        kb.consult_text(" ".join(f"p({i})." for i in range(200)), module="data")
        kb.module("data").pin(Residency.DISK)
        kb.sync_to_disk()
        crs = ClauseRetrievalServer(kb)
        result = crs.retrieve(read_term("p(X)"), mode=SearchMode.FS2_ONLY)
        assert len(result.candidates) == 200
        assert result.stats.fs2_search_calls >= 4

    def test_disk_full(self):
        tiny = DriveModel(
            name="tiny",
            geometry=DiskGeometry(512, 2, 1, 1),
            transfer_rate_bytes_per_sec=1e6,
            average_seek_s=0.01,
            rpm=3600,
        )
        disk = DiskSim(tiny)
        disk.write_extent("a", b"\0" * 1000)
        with pytest.raises(DiskFullError):
            disk.write_extent("b", b"\0" * 100)

    def test_too_many_variables(self):
        symbols = SymbolTable()
        encoder = PIFEncoder(symbols)
        args = ", ".join(f"V{i}" for i in range(300))
        term = read_term(f"p({args})")
        with pytest.raises(PIFError):
            encoder.encode_head(term)


class TestProtocolAndWatchdog:
    def test_search_before_query(self):
        fs2 = SecondStageFilter(SymbolTable())
        fs2.load_microprogram()
        with pytest.raises(FS2ProtocolError):
            fs2.search([])

    def test_query_before_microprogram(self):
        fs2 = SecondStageFilter(SymbolTable())
        with pytest.raises(FS2ProtocolError):
            fs2.set_query(read_term("p(a)"))

    def test_match_before_query(self):
        symbols = SymbolTable()
        compiled = compile_clause(clause_from_term(read_term("p(a)")), symbols)
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        with pytest.raises(FS2ProtocolError):
            fs2.match_compiled(compiled)

    def test_watchdog_on_corrupt_microprogram(self):
        """A microprogram that never signals an outcome trips the watchdog."""
        symbols = SymbolTable()
        compiled = compile_clause(clause_from_term(read_term("p(a)")), symbols)
        fs2 = SecondStageFilter(symbols)
        looping = MicroProgram(
            words=(int(0x1) | (0 << 4),),  # JMP 0: infinite loop
            labels={"POLL": 0},
            map_rom=dict(assemble_search_program().map_rom),
        )
        fs2.load_microprogram(looping)
        fs2.set_query(read_term("p(a)"))
        with pytest.raises(RuntimeError, match="watchdog"):
            fs2.match_compiled(compiled)

    def test_oversized_program_rejected(self):
        wcs = WritableControlStore()
        huge = MicroProgram(
            words=tuple([0] * (WCS_WORDS + 1)), labels={}, map_rom={}
        )
        with pytest.raises(ValueError):
            wcs.load_program(huge)

    def test_corrupt_record_stream(self):
        """Garbage bytes in a record must fail loudly, not mismatch quietly."""
        symbols = SymbolTable()
        fs2 = SecondStageFilter(symbols)
        fs2.load_microprogram()
        fs2.set_query(read_term("p(a)"))
        good = compile_clause(clause_from_term(read_term("p(a)")), symbols).to_bytes()
        corrupt = bytes([good[0], good[1], 0xFF]) + good[3:]
        with pytest.raises(Exception):
            fs2.search([corrupt])


class TestInterpreterLimits:
    def test_depth_limit(self):
        from repro.engine import PrologError, PrologMachine
        from repro.storage import KnowledgeBase

        kb = KnowledgeBase()
        kb.consult_text("loop(X) :- loop(X).")
        machine = PrologMachine(kb)
        machine.solver.max_depth = 50
        with pytest.raises(PrologError, match="depth"):
            machine.succeeds("loop(1)")
