"""Randomised differential testing: interpreter vs compiled machine.

Random stratified Datalog-style programs (guaranteed terminating) are run
on both engines; solution sequences must be identical, goal by goal.
"""

import random

import pytest

from repro.engine import PrologMachine
from repro.engine.zipvm import ZipMachine
from repro.storage import KnowledgeBase
from repro.terms import (
    Atom,
    Clause,
    Struct,
    Var,
    functor_indicator,
    term_to_string,
    variables,
)


def random_program(rng: random.Random) -> tuple[KnowledgeBase, list[Struct]]:
    """A stratified program: layer-n rules only call layer-(n-1) predicates.

    Stratification guarantees termination without occurs-style loops, so
    both engines can enumerate every solution.
    """
    kb = KnowledgeBase()
    constants = [Atom(f"c{i}") for i in range(rng.randint(3, 6))]
    layers: list[list[tuple[str, int]]] = [[]]
    # Layer 0: fact predicates.
    for p in range(rng.randint(2, 3)):
        name = f"f{p}"
        arity = rng.randint(1, 2)
        layers[0].append((name, arity))
        for _ in range(rng.randint(1, 6)):
            args = tuple(rng.choice(constants) for _ in range(arity))
            kb.add_clause(Clause(Struct(name, args)))
    # Layers 1..2: rules over the previous layer.
    for layer_number in (1, 2):
        layer: list[tuple[str, int]] = []
        for p in range(rng.randint(1, 2)):
            name = f"r{layer_number}_{p}"
            arity = rng.randint(1, 2)
            layer.append((name, arity))
            for _ in range(rng.randint(1, 3)):
                head_vars = [Var(f"X{i}") for i in range(arity)]
                body = []
                pool = list(head_vars)
                for _ in range(rng.randint(1, 2)):
                    target, target_arity = rng.choice(layers[layer_number - 1])
                    args = []
                    for _ in range(target_arity):
                        if pool and rng.random() < 0.7:
                            args.append(rng.choice(pool))
                        elif rng.random() < 0.5:
                            fresh = Var(f"Y{len(pool)}")
                            pool.append(fresh)
                            args.append(fresh)
                        else:
                            args.append(rng.choice(constants))
                    body.append(Struct(target, tuple(args)))
                kb.add_clause(Clause(Struct(name, tuple(head_vars)), tuple(body)))
        layers.append(layer)
    # Goals: one per predicate, fully open.
    goals = []
    for layer in layers:
        for name, arity in layer:
            goals.append(Struct(name, tuple(Var(f"Q{i}") for i in range(arity))))
    return kb, goals


def canonical(terms: tuple) -> tuple:
    """Render a solution tuple with unbound variables renamed positionally.

    Fresh-variable names differ between engines (``_Z8`` vs ``_X0_6``);
    only the *pattern* of unbound variables is semantically meaningful.
    """

    mapping: dict[str, str] = {}

    def rename(term):
        if isinstance(term, Var):
            if term.name not in mapping:
                mapping[term.name] = f"_G{len(mapping)}"
            return Var(mapping[term.name])
        if isinstance(term, Struct):
            return Struct(term.functor, tuple(rename(a) for a in term.args))
        return term

    return tuple(term_to_string(rename(t)) for t in terms)


def interpreter_solutions(kb: KnowledgeBase, goal: Struct) -> list[tuple]:
    machine = PrologMachine(kb, unknown_predicates="fail")
    names = [v.name for v in variables(goal)]
    return [
        canonical(tuple(s[n] for n in names)) for s in machine.solve(goal)
    ]


def compiled_solutions(kb: KnowledgeBase, goal: Struct) -> list[tuple]:
    def retriever(g):
        indicator = functor_indicator(g)
        return kb.clauses(indicator) if kb.has_predicate(indicator) else []

    vm = ZipMachine(retriever)
    goal_vars = list(variables(goal))
    out = []
    for bindings in vm.solve(goal):
        out.append(
            canonical(tuple(bindings.resolve(v) for v in goal_vars))
        )
    return out


@pytest.mark.parametrize("seed", range(25))
def test_engines_agree_on_random_programs(seed):
    rng = random.Random(seed)
    kb, goals = random_program(rng)
    for goal in goals:
        interpreted = interpreter_solutions(kb, goal)
        compiled = compiled_solutions(kb, goal)
        assert compiled == interpreted, (
            f"seed {seed}, goal {term_to_string(goal)}"
        )


@pytest.mark.parametrize("seed", range(35, 45))
def test_engines_agree_with_uncompilable_clauses(seed):
    """Programs where some predicates hold clauses the VM cannot compile.

    Negation (``\\+``) in a clause body raises CompileError, so the VM
    must fall back to the interpreter for that *predicate* — while the
    callers and siblings stay compiled — and the answer sequence must
    still match the interpreter exactly.
    """
    rng = random.Random(seed)
    kb, goals = random_program(rng)
    facts = [ind for ind in kb.predicates() if ind[0].startswith("f")]
    poisoned = 0
    for indicator in list(kb.predicates()):
        if not indicator[0].startswith("r") or rng.random() >= 0.6:
            continue
        name, arity = indicator
        pos_name, pos_arity = rng.choice(facts)
        neg_name, neg_arity = rng.choice(facts)
        head_vars = [Var(f"X{i}") for i in range(arity)]
        pool = list(head_vars)
        pos_args = tuple(pool[i % len(pool)] for i in range(pos_arity))
        neg_args = tuple(pool[i % len(pool)] for i in range(neg_arity))
        kb.add_clause(
            Clause(
                Struct(name, tuple(head_vars)),
                (
                    Struct(pos_name, pos_args),
                    Struct("\\+", (Struct(neg_name, neg_args),)),
                ),
            )
        )
        poisoned += 1
    if not poisoned:
        pytest.skip("seed produced no rule predicates to poison")
    for goal in goals:
        interpreted = interpreter_solutions(kb, goal)
        compiled = compiled_solutions(kb, goal)
        assert compiled == interpreted, (
            f"seed {seed}, goal {term_to_string(goal)}"
        )


def test_per_predicate_fallback_keeps_siblings_compiled():
    """One uncompilable predicate escapes; its compilable caller does not.

    Pre-fix the VM gave up on the whole query at the first CompileError;
    now only ``odd/1`` (negation in the body) runs on the interpreter,
    and the VM still executes ``classify/2`` itself.
    """
    kb = KnowledgeBase()
    kb.consult_text(
        """
        num(1). num(2). num(3). num(4).
        even(2). even(4).
        odd(X) :- num(X), \\+ even(X).
        classify(X, odd) :- odd(X).
        classify(X, even) :- even(X).
        """
    )

    def retriever(g):
        indicator = functor_indicator(g)
        return kb.clauses(indicator) if kb.has_predicate(indicator) else []

    goal = Struct("classify", (Var("N"), Var("K")))
    vm = ZipMachine(retriever)
    got = []
    for bindings in vm.solve(goal):
        got.append(
            canonical((bindings.resolve(Var("N")), bindings.resolve(Var("K"))))
        )
    assert got == interpreter_solutions(kb, goal)
    # The escape hatch opened once per odd/1 activation, but classify/2
    # itself ran compiled — the VM executed real calls too.
    assert vm.escapes >= 1
    assert vm.calls >= 1


@pytest.mark.parametrize("seed", range(25, 35))
def test_engines_agree_with_cuts(seed):
    """Random programs with a cut appended to some rules."""
    rng = random.Random(seed)
    kb, goals = random_program(rng)
    # Rebuild each rule predicate with a cut at the end of its first clause.
    for indicator in list(kb.predicates()):
        clauses = kb.clauses(indicator)
        if any(not c.is_fact for c in clauses) and rng.random() < 0.7:
            first = clauses[0]
            if not first.is_fact:
                modified = Clause(first.head, first.body + (Atom("!"),))
                kb.retract(first)
                kb.asserta(modified)
    for goal in goals:
        interpreted = interpreter_solutions(kb, goal)
        compiled = compiled_solutions(kb, goal)
        assert compiled == interpreted, (
            f"seed {seed}, goal {term_to_string(goal)}"
        )
