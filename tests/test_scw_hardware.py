"""Tests for the byte-level FS1 hardware model, incl. equivalence with the
entry-level scan."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pif import ClauseFile, SymbolTable
from repro.scw import (
    CodewordScheme,
    FS1Hardware,
    SecondaryIndexFile,
)
from repro.terms import Clause, clause_from_term, read_term
from tests.strategies import clause_heads

SCHEME = CodewordScheme(width=64, bits_per_key=2, max_args=12)


def build(clause_texts, indicator):
    symbols = SymbolTable()
    clause_file = ClauseFile(indicator, symbols)
    for text in clause_texts:
        clause_file.append(clause_from_term(read_term(text)))
    index = SecondaryIndexFile.build(clause_file, SCHEME)
    return clause_file, index


class TestFS1Hardware:
    def test_requires_query(self):
        hardware = FS1Hardware(SCHEME)
        with pytest.raises(RuntimeError):
            hardware.stream(b"")

    def test_rejects_ragged_image(self):
        hardware = FS1Hardware(SCHEME)
        hardware.set_query(read_term("p(a)"))
        with pytest.raises(ValueError):
            hardware.stream(b"\x00" * 7)

    def test_basic_match(self):
        clause_file, index = build(["p(apple)", "p(banana)", "p(X)"], ("p", 1))
        hardware = FS1Hardware(SCHEME)
        hardware.set_query(read_term("p(apple)"))
        result = hardware.stream(index.to_bytes())
        addresses = clause_file.record_addresses()
        assert addresses[0] in result.addresses
        assert addresses[2] in result.addresses  # variable clause masked
        assert result.entries_processed == 3

    def test_timing(self):
        _, index = build([f"p(a{i})" for i in range(10)], ("p", 1))
        hardware = FS1Hardware(SCHEME, scan_rate_bytes_per_sec=1000)
        hardware.set_query(read_term("p(a1)"))
        result = hardware.stream(index.to_bytes())
        assert result.scan_time_s == pytest.approx(index.size_bytes() / 1000)
        assert result.bytes_shifted == index.size_bytes()

    def test_open_query_matches_everything(self):
        _, index = build([f"p(a{i}, b{i})" for i in range(5)], ("p", 2))
        hardware = FS1Hardware(SCHEME)
        hardware.set_query(read_term("p(X, Y)"))
        assert len(hardware.stream(index.to_bytes()).addresses) == 5

    def test_query_register_reload(self):
        clause_file, index = build(["p(aa)", "p(bb)"], ("p", 1))
        image = index.to_bytes()
        hardware = FS1Hardware(SCHEME)
        hardware.set_query(read_term("p(aa)"))
        first = hardware.stream(image).addresses
        hardware.set_query(read_term("p(bb)"))
        second = hardware.stream(image).addresses
        addresses = clause_file.record_addresses()
        assert addresses[0] in first and addresses[0] not in second
        assert addresses[1] in second and addresses[1] not in first


class TestEquivalenceWithEntryScan:
    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(clause_heads(arity=2), min_size=1, max_size=12),
        clause_heads(arity=2),
    )
    def test_byte_level_equals_entry_level(self, heads, query):
        index = SecondaryIndexFile(SCHEME, ("p", 2))
        for position, head in enumerate(heads):
            index.add(head, position * 100)
        entry_level = index.scan(SCHEME.query_codeword(query))
        hardware = FS1Hardware(SCHEME)
        hardware.set_query(query)
        byte_level = list(hardware.stream(index.to_bytes()).addresses)
        assert byte_level == entry_level

    def test_wide_scheme_equivalence(self):
        scheme = CodewordScheme(width=128, bits_per_key=3, max_args=4)
        index = SecondaryIndexFile(scheme, ("q", 3))
        heads = [
            read_term("q(a, f(b), [1, 2])"),
            read_term("q(X, f(b), [1, 2])"),
            read_term("q(a, g(c), [3])"),
        ]
        for position, head in enumerate(heads):
            index.add(head, position)
        hardware = FS1Hardware(scheme)
        for query_text in ("q(a, f(b), [1, 2])", "q(a, W, [3])", "q(A, B, C)"):
            query = read_term(query_text)
            hardware.set_query(query)
            assert list(hardware.stream(index.to_bytes()).addresses) == index.scan(
                scheme.query_codeword(query)
            )
