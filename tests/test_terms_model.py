"""Unit tests for the term data model (repro.terms.term)."""

import pytest

from repro.terms import (
    ANONYMOUS,
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Var,
    fresh_var,
    functor_indicator,
    is_ground,
    is_list_term,
    is_proper_list,
    list_parts,
    make_list,
    rename_apart,
    subterms,
    term_depth,
    term_size,
    to_term,
    variables,
)


class TestConstruction:
    def test_atom_equality(self):
        assert Atom("foo") == Atom("foo")
        assert Atom("foo") != Atom("bar")

    def test_numbers_distinct_types(self):
        assert Int(1) != Float(1.0)
        assert Int(3) == Int(3)
        assert Float(2.5) == Float(2.5)

    def test_var_identity_by_name(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")

    def test_anonymous_var(self):
        assert ANONYMOUS.is_anonymous()
        assert not Var("X").is_anonymous()

    def test_struct_requires_args(self):
        with pytest.raises(ValueError):
            Struct("f", ())

    def test_struct_arity_and_indicator(self):
        s = Struct("point", (Int(1), Int(2)))
        assert s.arity == 2
        assert s.indicator == ("point", 2)

    def test_struct_args_coerced_to_tuple(self):
        s = Struct("f", [Int(1)])  # type: ignore[arg-type]
        assert isinstance(s.args, tuple)

    def test_terms_hashable(self):
        terms = {Atom("a"), Int(1), Float(1.5), Var("X"), Struct("f", (Int(1),))}
        assert len(terms) == 5

    def test_is_callable(self):
        assert Atom("a").is_callable()
        assert Struct("f", (Int(1),)).is_callable()
        assert not Int(1).is_callable()
        assert not Var("X").is_callable()


class TestLists:
    def test_make_empty_list(self):
        assert make_list([]) == NIL

    def test_make_list_cons_chain(self):
        lst = make_list([Int(1), Int(2)])
        assert lst == Struct(".", (Int(1), Struct(".", (Int(2), NIL))))

    def test_list_parts_roundtrip(self):
        items = [Atom("a"), Atom("b"), Atom("c")]
        got, tail = list_parts(make_list(items))
        assert got == items
        assert tail == NIL

    def test_unterminated_list(self):
        lst = make_list([Atom("a")], tail=Var("T"))
        items, tail = list_parts(lst)
        assert items == [Atom("a")]
        assert tail == Var("T")
        assert not is_proper_list(lst)
        assert is_list_term(lst)

    def test_nil_is_list(self):
        assert is_list_term(NIL)
        assert is_proper_list(NIL)

    def test_non_list(self):
        assert not is_list_term(Atom("a"))
        items, tail = list_parts(Atom("a"))
        assert items == [] and tail == Atom("a")


class TestVariables:
    def test_variables_order_and_dedup(self):
        t = Struct("f", (Var("X"), Struct("g", (Var("Y"), Var("X")))))
        assert variables(t) == [Var("X"), Var("Y")]

    def test_is_ground(self):
        assert is_ground(Struct("f", (Int(1), Atom("a"))))
        assert not is_ground(Struct("f", (Var("X"),)))

    def test_fresh_vars_unique(self):
        assert fresh_var() != fresh_var()

    def test_rename_apart_consistent(self):
        t = Struct("f", (Var("X"), Var("X"), Var("Y")))
        renamed = rename_apart(t)
        assert isinstance(renamed, Struct)
        a, b, c = renamed.args
        assert a == b
        assert a != c
        assert a != Var("X")

    def test_rename_apart_anonymous_split(self):
        t = Struct("f", (Var("_"), Var("_")))
        renamed = rename_apart(t)
        assert isinstance(renamed, Struct)
        assert renamed.args[0] != renamed.args[1]

    def test_rename_apart_with_suffix(self):
        t = Struct("f", (Var("X"),))
        renamed = rename_apart(t, suffix="_1")
        assert isinstance(renamed, Struct)
        assert renamed.args[0] == Var("X_1")


class TestMetrics:
    def test_depth(self):
        assert term_depth(Atom("a")) == 0
        assert term_depth(Struct("f", (Atom("a"),))) == 1
        assert term_depth(Struct("f", (Struct("g", (Int(1),)),))) == 2

    def test_size(self):
        assert term_size(Atom("a")) == 1
        assert term_size(Struct("f", (Int(1), Int(2)))) == 3

    def test_subterms_preorder(self):
        t = Struct("f", (Atom("a"), Struct("g", (Int(1),))))
        seen = list(subterms(t))
        assert seen[0] == t
        assert Atom("a") in seen
        assert Int(1) in seen
        assert len(seen) == 4

    def test_functor_indicator(self):
        assert functor_indicator(Atom("a")) == ("a", 0)
        assert functor_indicator(Struct("f", (Int(1),))) == ("f", 1)
        with pytest.raises(TypeError):
            functor_indicator(Int(1))


class TestCoercion:
    def test_to_term_scalars(self):
        assert to_term(3) == Int(3)
        assert to_term(2.5) == Float(2.5)
        assert to_term("abc") == Atom("abc")
        assert to_term(Atom("x")) == Atom("x")

    def test_to_term_rejects_bool_and_other(self):
        with pytest.raises(TypeError):
            to_term(True)
        with pytest.raises(TypeError):
            to_term(object())
