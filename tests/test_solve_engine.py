"""The CRS-backed resolution pipeline: routing, prefetch, freshness.

``SolveEngine`` runs conjunctive queries with clause candidates pulled
through the sharded retrieval cluster.  These tests pin down the three
behaviours the wire protocol builds on:

* first-argument routing decides one-shard pulls vs broadcasts, and the
  retriever's stats expose which happened;
* sibling goals ride one batched ``retrieve_batch`` round-trip and the
  candidate cache absorbs the later per-goal pulls;
* ``assertz``/``retract`` during resolution invalidate every cache layer
  (candidate LRU, decoded-clause LRU, on-disk extents), so later choice
  points never see stale candidates.
"""

import pytest

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.crs import ClauseRetrievalServer, RetrievalTimeout, SearchMode
from repro.engine import PrologMachine, SolveEngine
from repro.engine.solve import ClusterRetriever
from repro.storage import KnowledgeBase, Residency
from repro.terms import read_term, term_to_string

GRAPH = """
edge(a, b). edge(b, c). edge(c, d). edge(a, e). edge(e, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
"""


def cluster_with(text: str, policy=ShardingPolicy.FIRST_ARG, shards: int = 2):
    cluster = ShardedRetrievalServer(shards, policy=policy)
    cluster.consult_text(text)
    return cluster


def answers(engine: SolveEngine, text: str, **kwargs) -> list[dict]:
    return [
        {name: term_to_string(value) for name, value in solution.items()}
        for solution in engine.solve(read_term(text), **kwargs)
    ]


class TestRouting:
    def test_bound_first_argument_goes_to_one_shard(self):
        engine = SolveEngine(cluster_with(GRAPH))
        assert answers(engine, "edge(a, X)") == [{"X": "b"}, {"X": "e"}]
        stats = engine.stats
        assert stats.single_shard >= 1
        assert stats.broadcasts == 0

    def test_unbound_first_argument_broadcasts(self):
        engine = SolveEngine(cluster_with(GRAPH))
        assert len(answers(engine, "edge(X, Y)")) == 5
        assert engine.stats.broadcasts >= 1

    def test_recursive_query_mixes_both(self):
        # path(a, X): the first edge(a, Y) pull routes on `a`; deeper
        # path(Y, Z) activations route on each bound midpoint.
        engine = SolveEngine(cluster_with(GRAPH))
        got = answers(engine, "path(a, X)")
        assert len(got) == 5
        assert engine.stats.single_shard >= 2


class TestPrefetch:
    def test_ground_siblings_share_one_batched_pull(self):
        engine = SolveEngine(cluster_with(GRAPH))
        got = answers(engine, "edge(a, b), edge(b, c), edge(c, d)")
        assert got == [{}]
        stats = engine.stats
        assert stats.prefetch_batches >= 1
        assert stats.prefetched_goals >= 2
        assert stats.cache_hits >= 2

    def test_repeated_subgoals_hit_the_candidate_cache(self):
        engine = SolveEngine(cluster_with(GRAPH))
        answers(engine, "path(a, d)")
        answers(engine, "path(a, d)")
        assert engine.stats.cache_hits >= 1


class TestEngineSequences:
    @pytest.mark.parametrize("engine_name", ["zip", "interp"])
    def test_cluster_solve_matches_single_kb_machine(self, engine_name):
        # PREDICATE sharding keeps every procedure whole on one shard,
        # so the cluster's candidate order is the single-KB clause
        # order and the answer *sequences* must be identical.
        kb = KnowledgeBase()
        kb.consult_text(GRAPH)
        machine = PrologMachine(kb, unknown_predicates="fail")
        engine = SolveEngine(
            cluster_with(GRAPH, policy=ShardingPolicy.PREDICATE),
            engine=engine_name,
        )
        for query in ["path(a, X)", "path(X, Y)", "edge(X, d)", "path(z, X)"]:
            want = [
                {n: term_to_string(v) for n, v in s.items()}
                for s in machine.solve(read_term(query))
            ]
            assert answers(engine, query) == want, query

    def test_max_solutions_caps_the_stream(self):
        engine = SolveEngine(cluster_with(GRAPH))
        assert len(answers(engine, "path(X, Y)", max_solutions=3)) == 3

    def test_deadline_expiry_raises_retrieval_timeout(self):
        engine = SolveEngine(cluster_with(GRAPH))
        with pytest.raises(RetrievalTimeout):
            list(engine.solve(read_term("path(X, Y)"), deadline_s=0.0))


class TestMutationFreshness:
    """assert/retract must defeat every cache between KB and solver."""

    def test_front_door_assertz_invalidates_candidate_cache(self):
        cluster = cluster_with(GRAPH)
        engine = SolveEngine(cluster)
        assert answers(engine, "edge(e, X)") == [{"X": "d"}]
        cluster.assertz(read_term("edge(e, f)"))
        assert answers(engine, "edge(e, X)") == [{"X": "d"}, {"X": "f"}]

    def test_front_door_retract_invalidates_candidate_cache(self):
        cluster = cluster_with(GRAPH)
        engine = SolveEngine(cluster)
        assert len(answers(engine, "edge(a, X)")) == 2
        cluster.retract(read_term("edge(a, e)"))
        assert answers(engine, "edge(a, X)") == [{"X": "b"}]

    def test_mid_resolution_assertz_is_visible_to_later_choice_points(self):
        # The assertz lands while edge(a, X) still has an open choice
        # point; the path(X, f) goal after it must see the new clause.
        engine = SolveEngine(cluster_with(GRAPH))
        got = answers(engine, "edge(a, X), assertz(edge(e, f)), path(X, f)")
        # Backtracking into edge(a, X) re-runs the assertz, so the
        # clause lands twice and path(e, f) has two proofs — exactly
        # what a standard Prolog does with this query.
        assert got == [{"X": "e"}, {"X": "e"}]

    def test_mid_resolution_retract_is_visible_to_later_goals(self):
        engine = SolveEngine(cluster_with(GRAPH))
        got = answers(engine, "retract(edge(a, b)), edge(a, X)")
        assert got == [{"X": "e"}]

    @pytest.mark.parametrize("mode", [SearchMode.FS1_ONLY, SearchMode.BOTH])
    def test_disk_resident_predicate_survives_mutation(self, mode):
        # Regression: the CRS used to write a predicate's clause/index
        # extents only when absent, then slice the *old* disk bytes with
        # the *new* address table after an assert/retract — serving
        # phantom or truncated candidates to later choice points.
        kb = KnowledgeBase()
        kb.consult_text(GRAPH)
        kb.module("user").pin(Residency.DISK)
        kb.sync_to_disk()
        crs = ClauseRetrievalServer(kb)

        def candidates(goal_text: str) -> set[str]:
            result = crs.retrieve(read_term(goal_text), mode=mode)
            return {term_to_string(c.head) for c in result.candidates}

        assert "edge(a,b)" in candidates("edge(a, X)")
        kb.assertz(read_term("edge(a, z)"))
        after_assert = candidates("edge(a, X)")
        assert "edge(a,z)" in after_assert
        kb.retract(read_term("edge(a, b)"))
        after_retract = candidates("edge(a, X)")
        assert "edge(a,b)" not in after_retract
        assert "edge(a,z)" in after_retract

    def test_sharded_disk_resident_mutation(self, tmp_path):
        # The same freshness guarantee through the cluster front door
        # with every shard's module pinned to its simulated disk.
        cluster = cluster_with(GRAPH, policy=ShardingPolicy.FIRST_ARG)
        cluster.pin_module("user", Residency.DISK)
        cluster.sync_to_disk()
        engine = SolveEngine(cluster, mode=SearchMode.BOTH)
        assert answers(engine, "edge(a, X)") == [{"X": "b"}, {"X": "e"}]
        cluster.assertz(read_term("edge(a, z)"))
        assert answers(engine, "edge(a, X)") == [
            {"X": "b"}, {"X": "e"}, {"X": "z"},
        ]
        cluster.retract(read_term("edge(a, b)"))
        assert answers(engine, "edge(a, X)") == [{"X": "e"}, {"X": "z"}]


class TestRetrieverContract:
    def test_unknown_predicate_fails_quietly_by_default(self):
        engine = SolveEngine(cluster_with(GRAPH))
        assert answers(engine, "nosuch(X)") == []

    def test_unknown_predicate_can_be_strict(self):
        from repro.engine import ExistenceError

        engine = SolveEngine(cluster_with(GRAPH), unknown="error")
        with pytest.raises(ExistenceError):
            answers(engine, "nosuch(X)")

    def test_retriever_cache_keys_on_variable_pattern(self):
        # path(X, Y) and path(A, B) share a canonical key; a retrieval
        # for one must serve the other from cache.
        cluster = cluster_with(GRAPH)
        retriever = ClusterRetriever(cluster)
        first = retriever(read_term("edge(X, Y)"))
        second = retriever(read_term("edge(A, B)"))
        assert [term_to_string(c.head) for c in first] == [
            term_to_string(c.head) for c in second
        ]
        assert retriever.stats.cache_hits == 1
        assert retriever.stats.retrievals == 1
