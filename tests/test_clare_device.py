"""Tests for the unified CLARE device (shared window, b2 selection)."""

import pytest

from repro.clare import CLARE, BoardNotSelected
from repro.fs2 import FilterSelect
from repro.pif import ClauseFile, CompiledClause, PIFDecoder, SymbolTable
from repro.scw import CodewordScheme, SecondaryIndexFile
from repro.terms import clause_from_term, read_term

SCHEME = CodewordScheme(width=64, bits_per_key=2)


@pytest.fixture
def setup():
    symbols = SymbolTable()
    clause_file = ClauseFile(("p", 2), symbols)
    for text in ["p(a, b)", "p(a, c)", "p(X, X)", "p(zz, ww)"]:
        clause_file.append(clause_from_term(read_term(text)))
    index = SecondaryIndexFile.build(clause_file, SCHEME)
    device = CLARE(symbols, SCHEME)
    return device, clause_file, index, symbols


class TestBoardSelection:
    def test_default_is_fs1(self, setup):
        device, *_ = setup
        assert device.selected == FilterSelect.FS1

    def test_fs2_op_while_fs1_selected(self, setup):
        device, *_ = setup
        with pytest.raises(BoardNotSelected):
            device.fs2_load_microprogram()

    def test_fs1_op_while_fs2_selected(self, setup):
        device, _, index, _ = setup
        device.select(FilterSelect.FS2)
        with pytest.raises(BoardNotSelected):
            device.fs1_set_query(read_term("p(a, X)"))

    def test_selection_is_b2(self, setup):
        device, *_ = setup
        device.select(FilterSelect.FS2)
        assert device.control.value & 0x04
        device.select(FilterSelect.FS1)
        assert not (device.control.value & 0x04)


class TestFS1Path:
    def test_search_and_status_bit(self, setup):
        device, clause_file, index, _ = setup
        device.fs1_set_query(read_term("p(a, X)"))
        result = device.fs1_search(index.to_bytes())
        assert len(result.addresses) >= 3  # p(a,b), p(a,c), p(X,X)
        assert device.control.match_found

    def test_no_match_clears_status(self):
        # A ground-only index (no variable clause to absorb everything).
        symbols = SymbolTable()
        clause_file = ClauseFile(("q", 1), symbols)
        clause_file.append(clause_from_term(read_term("q(apple)")))
        index = SecondaryIndexFile.build(clause_file, SCHEME)
        device = CLARE(symbols, SCHEME)
        device.fs1_set_query(read_term("q(nothing_like_this)"))
        device.fs1_search(index.to_bytes())
        assert not device.control.match_found


class TestFS2Path:
    def test_full_protocol(self, setup):
        device, clause_file, _, symbols = setup
        device.select(FilterSelect.FS2)
        device.fs2_load_microprogram()
        device.fs2_set_query(read_term("p(a, X)"))
        records = [clause_file.record(i).to_bytes() for i in range(len(clause_file))]
        stats = device.fs2_search(records)
        assert stats.satisfiers == 3
        assert len(device.fs2_read_results()) == 3
        assert stats.clock_time_ns > 0

    def test_shared_control_register(self, setup):
        device, clause_file, _, _ = setup
        device.select(FilterSelect.FS2)
        device.fs2_load_microprogram()
        device.fs2_set_query(read_term("p(zz, ww)"))
        device.fs2_search([clause_file.record(3).to_bytes()])
        # The FS2's match-found lands in the device's register.
        assert device.control.match_found


class TestMemoryMappedView:
    def test_window_shares_control_register(self, setup):
        device, *_ = setup
        from repro.fs2 import CLARE_BASE_ADDRESS

        device.window.write(CLARE_BASE_ADDRESS, 0b0000_0100)  # b2 = FS2
        assert device.selected.name == "FS2"

    def test_microprogram_via_window(self, setup):
        device, clause_file, _, _ = setup
        from repro.fs2 import CLARE_BASE_ADDRESS, FilterSelect
        from repro.fs2.microcode import assemble_search_program

        program = assemble_search_program()
        device.window.load_program_words(program.words)
        device.fs2.wcs._map_rom = dict(program.map_rom)  # ROM is factory-set
        device.fs2._program = program
        device.select(FilterSelect.FS2)
        device.fs2_set_query(read_term("p(a, b)"))
        stats = device.fs2_search([clause_file.record(0).to_bytes()])
        assert stats.satisfiers == 1

    def test_results_readable_through_window(self, setup):
        device, clause_file, _, _ = setup
        from repro.fs2 import CLARE_BASE_ADDRESS, FilterSelect
        from repro.fs2.vme import RM_OFFSET

        device.select(FilterSelect.FS2)
        device.fs2_load_microprogram()
        device.fs2_set_query(read_term("p(a, b)"))
        record = clause_file.record(0).to_bytes()
        device.fs2_search([record])
        data = device.window.read_block(
            CLARE_BASE_ADDRESS + RM_OFFSET, len(record)
        )
        assert data == record


class TestTwoStagePipeline:
    def test_mode_d(self, setup):
        device, clause_file, index, symbols = setup
        addresses = clause_file.record_addresses()
        image = clause_file.to_bytes()
        lengths = {
            address: len(clause_file.record(i).to_bytes())
            for i, address in enumerate(addresses)
        }

        def fetch(candidates):
            return [image[a : a + lengths[a]] for a in candidates]

        fs1_result, fs2_stats, satisfiers = device.two_stage_search(
            read_term("p(a, b)"), index.to_bytes(), fetch, ("p", 2)
        )
        # FS1 pruned at least the unrelated clause; FS2 then rejects both
        # p(a,c) (content) and p(X,X) (shared-variable inconsistency).
        assert fs1_result.entries_processed == 4
        assert fs2_stats.clauses_examined <= 3
        decoder = PIFDecoder(symbols)
        heads = set()
        for record in satisfiers:
            compiled, _ = CompiledClause.from_bytes(record, ("p", 2))
            heads.add(str(decoder.decode_head(compiled.head_encoded)))
        assert heads == {"p(a,b)"}
        assert device.selected == FilterSelect.FS2  # pipeline ends on FS2
