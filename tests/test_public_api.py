"""The public API surface: every advertised name resolves and works."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_lazy_exports_resolve(self):
        for name in repro._EXPORTS:
            assert getattr(repro, name) is not None, name

    def test_dir_lists_exports(self):
        listing = dir(repro)
        for name in repro._EXPORTS:
            assert name in listing

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.no_such_name

    def test_version(self):
        assert repro.__version__


class TestSubpackageAll:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.terms",
            "repro.unify",
            "repro.pif",
            "repro.scw",
            "repro.fs2",
            "repro.disk",
            "repro.storage",
            "repro.crs",
            "repro.engine",
            "repro.workloads",
        ],
    )
    def test_all_names_exist(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"


class TestQuickstartSnippet:
    def test_readme_quickstart_runs(self):
        from repro import KnowledgeBase, PrologMachine

        kb = KnowledgeBase()
        kb.consult_text(
            "parent(tom, bob).  parent(bob, ann). "
            "grand(X, Z) :- parent(X, Y), parent(Y, Z)."
        )
        machine = PrologMachine(kb)
        answers = [str(s["Who"]) for s in machine.solve_text("grand(tom, Who)")]
        assert answers == ["ann"]

    def test_docstring_snippet_table1(self):
        from repro import table1

        rows = table1()
        assert len(rows) == 7


class TestDocumentationCoverage:
    """Deliverable check: doc comments on every public item."""

    MODULES = [
        "repro", "repro.clare", "repro.cli", "repro.report",
        "repro.terms", "repro.terms.term", "repro.terms.reader",
        "repro.terms.writer", "repro.terms.clause",
        "repro.unify", "repro.unify.bindings", "repro.unify.unify",
        "repro.unify.match",
        "repro.pif", "repro.pif.tags", "repro.pif.symbols",
        "repro.pif.encoder", "repro.pif.decoder", "repro.pif.clausefile",
        "repro.pif.dump",
        "repro.scw", "repro.scw.codeword", "repro.scw.index",
        "repro.scw.fs1", "repro.scw.hardware", "repro.scw.analysis",
        "repro.fs2", "repro.fs2.timing", "repro.fs2.control",
        "repro.fs2.buffer", "repro.fs2.result", "repro.fs2.cursor",
        "repro.fs2.tue", "repro.fs2.microcode", "repro.fs2.wcs",
        "repro.fs2.engine", "repro.fs2.stream", "repro.fs2.vme",
        "repro.disk", "repro.disk.geometry", "repro.disk.drive",
        "repro.disk.dma",
        "repro.storage", "repro.storage.module", "repro.storage.kb",
        "repro.storage.persist",
        "repro.crs", "repro.crs.server", "repro.crs.planner",
        "repro.crs.optimizer", "repro.crs.concurrency", "repro.crs.client",
        "repro.engine", "repro.engine.interp", "repro.engine.machine",
        "repro.engine.zipvm", "repro.engine.library",
        "repro.workloads", "repro.workloads.synthetic",
        "repro.workloads.warren", "repro.workloads.dbbench",
    ]

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_items_documented(self, module_name):
        import inspect

        module = importlib.import_module(module_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                if item.__module__ != module_name and module_name.count(".") > 1:
                    continue  # re-export: documented at its home module
                if not (item.__doc__ and item.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{module_name}: {undocumented}"
