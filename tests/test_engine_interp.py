"""Tests for the Prolog interpreter: resolution, control, builtins."""

import pytest

from repro.engine import ExistenceError, PrologError, PrologMachine
from repro.storage import KnowledgeBase
from repro.terms import Int, term_to_string


def machine(program: str = "", **kwargs) -> PrologMachine:
    kb = KnowledgeBase()
    if program:
        kb.consult_text(program)
    return PrologMachine(kb, **kwargs)


def answers(m: PrologMachine, goal: str, var: str) -> list[str]:
    return [term_to_string(s[var]) for s in m.solve_text(goal)]


class TestResolution:
    def test_facts(self):
        m = machine("p(a). p(b).")
        assert answers(m, "p(X)", "X") == ["a", "b"]

    def test_clause_order_respected(self):
        m = machine("p(z). p(a). p(m).")
        assert answers(m, "p(X)", "X") == ["z", "a", "m"]

    def test_rules(self):
        m = machine(
            "parent(tom, bob). parent(bob, ann). "
            "grand(X, Z) :- parent(X, Y), parent(Y, Z)."
        )
        assert answers(m, "grand(tom, Z)", "Z") == ["ann"]

    def test_recursion(self):
        m = machine(
            "edge(a, b). edge(b, c). edge(c, d). "
            "path(X, Y) :- edge(X, Y). "
            "path(X, Z) :- edge(X, Y), path(Y, Z)."
        )
        assert answers(m, "path(a, X)", "X") == ["b", "c", "d"]

    def test_backtracking_through_bindings(self):
        m = machine("p(1). p(2). q(2). r(X) :- p(X), q(X).")
        assert answers(m, "r(X)", "X") == ["2"]

    def test_list_programs(self):
        m = machine(
            "append([], L, L). "
            "append([H|T], L, [H|R]) :- append(T, L, R)."
        )
        assert answers(m, "append([1, 2], [3], X)", "X") == ["[1,2,3]"]
        # Reverse direction: generate splits.
        splits = [
            (term_to_string(s["A"]), term_to_string(s["B"]))
            for s in m.solve_text("append(A, B, [1, 2])")
        ]
        assert splits == [("[]", "[1,2]"), ("[1]", "[2]"), ("[1,2]", "[]")]

    def test_naive_reverse(self):
        m = machine(
            "append([], L, L). "
            "append([H|T], L, [H|R]) :- append(T, L, R). "
            "nrev([], []). "
            "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R)."
        )
        assert answers(m, "nrev([1, 2, 3, 4], X)", "X") == ["[4,3,2,1]"]

    def test_unknown_predicate_error(self):
        m = machine("p(a).")
        with pytest.raises(ExistenceError):
            m.succeeds("missing(1)")

    def test_unknown_predicate_fail_mode(self):
        m = machine("p(a).", unknown_predicates="fail")
        assert not m.succeeds("missing(1)")

    def test_anonymous_variables_distinct(self):
        m = machine("p(a, b).")
        assert m.succeeds("p(_, _)")


class TestControl:
    def test_conjunction_disjunction(self):
        m = machine("p(1). q(2).")
        assert answers(m, "(p(X) ; q(X))", "X") == ["1", "2"]
        assert answers(m, "p(X), q(Y)", "X") == ["1"]

    def test_cut_prunes_clauses(self):
        m = machine("max(X, Y, X) :- X >= Y, !. max(_, Y, Y).")
        assert answers(m, "max(3, 2, M)", "M") == ["3"]
        assert answers(m, "max(2, 3, M)", "M") == ["3"]

    def test_cut_prunes_alternatives(self):
        m = machine("p(1). p(2). p(3). first(X) :- p(X), !.")
        assert answers(m, "first(X)", "X") == ["1"]

    def test_cut_local_to_clause(self):
        m = machine("p(1). p(2). q(X) :- p(X), !. q(99).")
        assert answers(m, "q(X)", "X") == ["1"]
        # The cut in q does not affect an outer conjunction's predicates.
        m2 = machine("p(1). p(2). q(X) :- p(X), !. r(X, Y) :- p(X), q(Y).")
        assert [
            (term_to_string(s["X"]), term_to_string(s["Y"]))
            for s in m2.solve_text("r(X, Y)")
        ] == [("1", "1"), ("2", "1")]

    def test_if_then_else(self):
        m = machine("")
        assert answers(m, "(1 < 2 -> X = yes ; X = no)", "X") == ["yes"]
        assert answers(m, "(2 < 1 -> X = yes ; X = no)", "X") == ["no"]

    def test_if_then_commits_condition(self):
        m = machine("p(1). p(2).")
        # The condition p(X) commits to X = 1.
        assert answers(m, "(p(X) -> true ; fail)", "X") == ["1"]

    def test_negation_as_failure(self):
        m = machine("p(a).")
        assert m.succeeds("\\+ p(b)")
        assert not m.succeeds("\\+ p(a)")

    def test_negation_leaves_no_bindings(self):
        m = machine("p(a).")
        assert answers(m, "\\+ p(zz), X = done", "X") == ["done"]

    def test_call(self):
        m = machine("p(a). p(b).")
        assert answers(m, "G = p(X), call(G)", "X") == ["a", "b"]

    def test_fail_and_true(self):
        m = machine("")
        assert m.succeeds("true")
        assert not m.succeeds("fail")
        assert not m.succeeds("false")

    def test_unbound_goal_raises(self):
        m = machine("")
        with pytest.raises(PrologError):
            m.succeeds("call(X)")


class TestBuiltins:
    def test_unification_builtins(self):
        m = machine("")
        assert answers(m, "X = f(1)", "X") == ["f(1)"]
        assert m.succeeds("a \\= b")
        assert not m.succeeds("a \\= a")
        assert m.succeeds("f(X) == f(X)")
        assert m.succeeds("f(X) \\== f(Y)")

    def test_type_tests(self):
        m = machine("")
        assert m.succeeds("atom(foo)")
        assert not m.succeeds("atom(1)")
        assert m.succeeds("number(1), number(1.5), integer(1), float(1.5)")
        assert m.succeeds("var(X)")
        assert m.succeeds("X = 1, nonvar(X)")
        assert m.succeeds("compound(f(a))")
        assert m.succeeds("atomic(foo), atomic(3)")
        assert m.succeeds("ground(f(a, 1))")
        assert not m.succeeds("ground(f(X))")

    def test_arithmetic(self):
        m = machine("")
        assert answers(m, "X is 2 + 3 * 4", "X") == ["14"]
        assert answers(m, "X is 10 // 3", "X") == ["3"]
        assert answers(m, "X is 10 mod 3", "X") == ["1"]
        assert answers(m, "X is -(5)", "X") == ["-5"]
        assert answers(m, "X is abs(-7)", "X") == ["7"]
        assert answers(m, "X is min(2, 3) + max(2, 3)", "X") == ["5"]
        assert answers(m, "X is 7 / 2", "X") == ["3.5"]
        assert answers(m, "X is 8 / 2", "X") == ["4"]

    def test_arithmetic_errors(self):
        m = machine("")
        with pytest.raises(PrologError):
            m.succeeds("X is 1 / 0")
        with pytest.raises(PrologError):
            m.succeeds("X is foo + 1")
        with pytest.raises(PrologError):
            m.succeeds("X is Y + 1")

    def test_comparisons(self):
        m = machine("")
        assert m.succeeds("1 < 2, 2 > 1, 1 =< 1, 2 >= 2")
        assert m.succeeds("1 + 1 =:= 2")
        assert m.succeeds("1 =\\= 2")

    def test_term_ordering(self):
        m = machine("")
        assert m.succeeds("foo @< zoo")
        assert m.succeeds("1 @< foo")  # numbers before atoms
        assert m.succeeds("foo @< f(a)")  # atoms before compounds
        assert m.succeeds("f(a) @=< f(a)")

    def test_functor(self):
        m = machine("")
        assert answers(m, "functor(f(a, b), N, A), X = N/A", "X") == ["f/2"]
        assert answers(m, "functor(T, point, 2)", "T")[0].startswith("point(")
        assert answers(m, "functor(foo, N, A), X = N/A", "X") == ["foo/0"]

    def test_arg(self):
        m = machine("")
        assert answers(m, "arg(2, f(a, b, c), X)", "X") == ["b"]
        assert not m.succeeds("arg(4, f(a, b, c), _)")

    def test_univ(self):
        m = machine("")
        assert answers(m, "f(a, b) =.. L", "L") == ["[f,a,b]"]
        assert answers(m, "T =.. [g, 1, 2]", "T") == ["g(1,2)"]
        assert answers(m, "foo =.. L", "L") == ["[foo]"]

    def test_findall(self):
        m = machine("p(1). p(2). p(3).")
        assert answers(m, "findall(X, p(X), L)", "L") == ["[1,2,3]"]
        assert answers(m, "findall(X, p(X), [A | _])", "A") == ["1"]
        assert answers(m, "findall(X, fail, L)", "L") == ["[]"]

    def test_between(self):
        m = machine("")
        assert answers(m, "between(1, 3, X)", "X") == ["1", "2", "3"]
        assert m.succeeds("between(1, 3, 2)")
        assert not m.succeeds("between(1, 3, 5)")

    def test_length(self):
        m = machine("")
        assert answers(m, "length([a, b, c], N)", "N") == ["3"]
        assert answers(m, "length(L, 2)", "L")[0].count(",") == 1

    def test_assert_retract(self):
        m = machine("p(a).")
        assert m.succeeds("assertz(p(b))")
        assert answers(m, "p(X)", "X") == ["a", "b"]
        assert m.succeeds("asserta(p(zero))")
        assert answers(m, "p(X)", "X") == ["zero", "a", "b"]
        assert m.succeeds("retract(p(a))")
        assert answers(m, "p(X)", "X") == ["zero", "b"]
        assert not m.succeeds("retract(p(never))")

    def test_assert_rule(self):
        m = machine("p(1).")
        assert m.succeeds("assertz((q(X) :- p(X)))")
        assert answers(m, "q(X)", "X") == ["1"]

    def test_clause_inspects_facts(self):
        m = machine("p(a). p(b).")
        assert answers(m, "clause(p(X), true)", "X") == ["a", "b"]

    def test_clause_inspects_rules(self):
        m = machine("q(X) :- p(X), r(X).")
        bodies = answers(m, "clause(q(_), B)", "B")
        assert bodies == ["p(_A),r(_A)"] or bodies[0].startswith("p(")

    def test_clause_requires_bound_head(self):
        m = machine("p(a).")
        with pytest.raises(PrologError):
            m.succeeds("clause(X, true)")


class TestMachineSurface:
    def test_count_solutions(self):
        m = machine("p(1). p(2).")
        assert m.count_solutions("p(_)") == 2

    def test_all_solutions(self):
        m = machine("p(1).")
        assert m.all_solutions("p(X)") == [{"X": Int(1)}]

    def test_stats_recorded(self):
        m = machine("p(1). q(X) :- p(X).")
        m.all_solutions("q(X)")
        assert m.stats.retrievals >= 2
        assert m.stats.candidates >= 2
