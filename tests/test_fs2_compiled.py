"""Differential suite: the compiled FS2 fast path vs the microcoded engine.

The compiled matcher must be *observationally identical* to the
cycle-stepped microcode sequencer — same satisfier sets in the same
Result Memory slots, same ``op_counts`` and ``op_time_ns`` (it drives
the same TUE through the same operation sequence), and the same
``micro_cycles`` (reproduced from the cycle-cost table derived
mechanically from the assembled search program).  Everything here holds
the two modes against each other: hypothesis-generated heads and goals,
the known-nasty corners (shared variables, open lists, in-line integer
boundaries, Result Memory overflow), and the full sharded
``retrieve_batch`` pipeline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.crs import SearchMode
from repro.fs2 import (
    FS2_MODES,
    FS2ProtocolError,
    MAX_SATISFIERS,
    ResultMemoryFull,
    SecondStageFilter,
    assemble_search_program,
    derive_cycle_costs,
)
from repro.obs import Instrumentation
from repro.pif import SymbolTable, compile_clause
from repro.terms import Clause, Int, Struct, Var, read_term

from .strategies import PIF_INT_MAX, PIF_INT_MIN, clause_heads

CHUNK = 64  # the Double Buffer / Result Memory natural batch size


def build_fs2(mode, heads, obs=None, **kwargs):
    """One filter per mode: each gets its own symbol table and records."""
    symbols = SymbolTable()
    records = [
        compile_clause(Clause(head=head), symbols).to_bytes() for head in heads
    ]
    fs2 = SecondStageFilter(symbols, mode=mode, obs=obs, **kwargs)
    fs2.load_microprogram()
    return fs2, records


def run_mode(mode, goal, heads):
    """Search the heads in 64-record chunks; collect per-chunk outcomes."""
    fs2, records = build_fs2(mode, heads)
    fs2.set_query(goal)
    outcomes = []
    for start in range(0, len(records), CHUNK):
        stats = fs2.search(records[start : start + CHUNK])
        outcomes.append(
            (
                stats.clauses_examined,
                stats.satisfiers,
                stats.bytes_streamed,
                stats.micro_cycles,
                dict(stats.op_counts),
                stats.op_time_ns,
                fs2.read_results(),
                fs2.result.satisfier_positions(),
            )
        )
        fs2.rearm()
    return outcomes


def assert_differential(goal, heads):
    micro = run_mode("microcoded", goal, heads)
    fast = run_mode("compiled", goal, heads)
    assert fast == micro, f"modes diverge for goal {goal}"


class TestDifferentialProperty:
    """Random heads and goals: every stat and every satisfier agrees."""

    @given(
        heads=st.lists(
            clause_heads(functor="p", arity=3), min_size=1, max_size=20
        ),
        goal=clause_heads(functor="p", arity=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_outcomes(self, heads, goal):
        assert_differential(goal, heads)

    @given(
        heads=st.lists(
            clause_heads(functor="q", arity=1), min_size=1, max_size=12
        ),
        goal=clause_heads(functor="q", arity=1),
    )
    @settings(max_examples=30, deadline=None)
    def test_same_outcomes_unary(self, heads, goal):
        assert_differential(goal, heads)


class TestKnownCorners:
    """Hand-picked shapes that stress specific datapath branches."""

    def heads(self, *texts):
        return [read_term(text) for text in texts]

    def test_shared_query_variables(self):
        heads = self.heads(
            "p(a, a, a)", "p(a, a, b)", "p(X, X, Y)", "p(X, Y, X)",
            "p(f(Z), f(Z), g(Z))", "p(1, 1, 1)",
        )
        for goal_text in ("p(A, A, B)", "p(A, A, A)", "p(A, B, A)"):
            assert_differential(read_term(goal_text), heads)

    def test_db_side_variable_aliases(self):
        heads = self.heads(
            "p(V, V, V)", "p(V, W, V)", "p(f(V, V), V, g(V))",
            "p(_, _, _)", "p(V, g(V, W), W)",
        )
        for goal_text in ("p(a, a, a)", "p(f(k, k), k, g(k))", "p(X, g(X, b), b)"):
            assert_differential(read_term(goal_text), heads)

    def test_open_lists(self):
        heads = self.heads(
            "p([1, 2, 3])", "p([1, 2 | T])", "p([])", "p([X | T])",
            "p([a, [b, c] | T])", "p([[1], [2, 3], []])", "p([a | b])",
        )
        for goal_text in (
            "p([1, 2 | Rest])", "p([H | T])", "p([])",
            "p([a, [b | M] | T])", "p(L)",
        ):
            assert_differential(read_term(goal_text), heads)

    def test_inline_integer_boundaries(self):
        edges = [PIF_INT_MIN, PIF_INT_MIN + 1, -1, 0, 1, PIF_INT_MAX - 1, PIF_INT_MAX]
        heads = [Struct("p", (Int(n),)) for n in edges]
        for n in (PIF_INT_MIN, -1, 0, PIF_INT_MAX):
            assert_differential(Struct("p", (Int(n),)), heads)
        assert_differential(Struct("p", (Var("N"),)), heads)

    def test_nested_structs_and_floats(self):
        heads = self.heads(
            "p(f(g(h(a)), 3.5))", "p(f(g(h(b)), 3.5))", "p(f(X, -2.25))",
            "p(f(g(Y), Z))",
        )
        for goal_text in ("p(f(g(h(a)), 3.5))", "p(f(g(W), V))", "p(f(A, 3.5))"):
            assert_differential(read_term(goal_text), heads)

    def test_result_memory_overflow_is_identical(self):
        """>64 satisfiers must overflow the RM at the same record."""
        heads = [read_term(f"p(a, {i})") for i in range(MAX_SATISFIERS + 6)]
        goal = read_term("p(a, N)")
        states = {}
        for mode in FS2_MODES:
            fs2, records = build_fs2(mode, heads)
            fs2.set_query(goal)
            with pytest.raises(ResultMemoryFull):
                fs2.search(records)
            states[mode] = (
                fs2.result.satisfier_count,
                fs2.result.satisfier_positions(),
                fs2.read_results(),
            )
        assert states["compiled"] == states["microcoded"]
        assert states["compiled"][0] == MAX_SATISFIERS


class TestHostProtocol:
    """The compiled mode keeps the exact host-visible mode protocol."""

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown FS2 mode"):
            SecondStageFilter(SymbolTable(), mode="vectorised")

    def test_rearm_requires_a_query(self):
        fs2, _ = build_fs2("compiled", [read_term("p(a)")])
        with pytest.raises(FS2ProtocolError):
            fs2.rearm()

    def test_rearm_equals_set_query(self):
        """rearm() between chunks reproduces a full set_query flush."""
        heads = [read_term(f"p(x{i % 3}, {i})") for i in range(10)]
        goal = read_term("p(x1, N)")
        for mode in FS2_MODES:
            fs2, records = build_fs2(mode, heads)
            fs2.set_query(goal)
            first = (fs2.search(records).satisfiers, fs2.read_results())
            fs2.rearm()
            again = (fs2.search(records).satisfiers, fs2.read_results())
            assert again == first

    def test_satisfier_positions_index_the_call(self):
        heads = [read_term(f"p({'a' if i % 4 == 0 else 'b'}, {i})") for i in range(12)]
        fs2, records = build_fs2("compiled", heads)
        fs2.set_query(read_term("p(a, N)"))
        stats = fs2.search(records)
        positions = fs2.result.satisfier_positions()
        assert positions == [0, 4, 8]
        assert stats.satisfiers == len(positions)
        fs2.rearm()
        fs2.search(records[4:])
        assert fs2.result.satisfier_positions() == [0, 4]

    def test_plan_cache_hits_and_evictions(self):
        obs = Instrumentation()
        heads = [read_term("p(a, 1)"), read_term("p(b, 2)")]
        fs2, records = build_fs2("compiled", heads, obs=obs, plan_cache_size=2)
        total = obs.registry.total
        fs2.set_query(read_term("p(X, N)"))
        fs2.search(records)
        assert (total("fs2.plan_cache.misses"), total("fs2.plan_cache.hits")) == (1, 0)
        # A renamed-variable alias canonicalises to the same plan key.
        fs2.set_query(read_term("p(Foo, Bar)"))
        assert (total("fs2.plan_cache.misses"), total("fs2.plan_cache.hits")) == (1, 1)
        fs2.set_query(read_term("p(a, N)"))
        fs2.set_query(read_term("p(b, N)"))
        assert total("fs2.plan_cache.misses") == 3
        assert total("fs2.plan_cache.evictions") == 1
        # The evicted original re-plans, and still searches identically.
        fs2.set_query(read_term("p(X, N)"))
        assert total("fs2.plan_cache.misses") == 4
        assert fs2.search(records).satisfiers == 2

    def test_cycle_costs_derivation_is_complete(self):
        program = assemble_search_program()
        costs = derive_cycle_costs(program)
        scalars = (
            costs.entry, costs.arg_header, costs.hit_exit, costs.next_to_arg,
            costs.next_to_elem, costs.elem_header, costs.finish_hit,
            costs.finish_miss,
        )
        assert all(isinstance(c, int) and c > 0 for c in scalars)
        # Every map-ROM (db class, query class) pair is costed for the
        # three reachable (hit, entered) machine states.
        assert len(costs.dispatch) == 36 * 3
        assert all(cycles > 0 for cycles in costs.dispatch.values())


def sharded_batch(mode, clauses_text, goals, search_mode):
    server = ShardedRetrievalServer(
        3, ShardingPolicy.FIRST_ARG, fs2_mode=mode, cache_size=0
    )
    server.consult_text(clauses_text)
    results = server.retrieve_batch(goals, mode=search_mode)
    return [
        (
            sorted(str(clause) for clause in result.candidates),
            result.stats.clauses_total,
            result.stats.final_candidates,
            result.stats.filter_time_s,
        )
        for result in results
    ]


class TestShardedDifferential:
    """The cluster pipeline agrees across FS2 modes, end to end."""

    PROGRAM = "\n".join(
        [f"edge(n{i % 9}, n{(i * 7) % 11}, {i})." for i in range(40)]
        + ["edge(X, X, 0).", "edge(n1, Y, cost(Y))."]
        + [f"fact(f(k{i % 5}), [v{i % 3} | T])." for i in range(12)]
    )
    GOALS = [
        read_term("edge(n1, X, C)"),
        read_term("edge(A, A, C)"),
        read_term("fact(f(k2), [v0, v9])"),
        read_term("fact(F, L)"),
    ]

    @pytest.mark.parametrize("search_mode", [SearchMode.FS2_ONLY, SearchMode.BOTH])
    def test_retrieve_batch_agrees(self, search_mode):
        micro = sharded_batch("microcoded", self.PROGRAM, self.GOALS, search_mode)
        fast = sharded_batch("compiled", self.PROGRAM, self.GOALS, search_mode)
        assert fast == micro
