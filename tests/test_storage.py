"""Tests for modules and the knowledge base."""

import pytest

from repro.storage import (
    KnowledgeBase,
    Module,
    Residency,
    UnknownPredicateError,
)
from repro.terms import clause_from_term, read_term


def parse(text):
    return clause_from_term(read_term(text))


class TestModule:
    def test_residency_by_size(self):
        module = Module("m", large_threshold_bytes=100)
        assert module.residency(50) == Residency.MEMORY
        assert module.residency(101) == Residency.DISK

    def test_pinning(self):
        module = Module("m", large_threshold_bytes=100)
        module.pin(Residency.DISK)
        assert module.residency(1) == Residency.DISK
        with pytest.raises(ValueError):
            module.pin("nowhere")

    def test_procedures_tracked(self):
        module = Module("m")
        module.add_procedure(("p", 2))
        assert ("p", 2) in module.indicators


class TestKnowledgeBase:
    def test_consult_text(self):
        kb = KnowledgeBase()
        count = kb.consult_text("p(a). p(b). q(X) :- p(X).")
        assert count == 3
        assert kb.clause_count() == 3
        assert set(kb.predicates()) == {("p", 1), ("q", 1)}

    def test_clause_order_preserved(self):
        kb = KnowledgeBase()
        kb.consult_text("p(c). p(a). p(b).")
        heads = [str(c.head) for c in kb.clauses(("p", 1))]
        assert heads == ["p(c)", "p(a)", "p(b)"]

    def test_mixed_relations(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a). p(X) :- q(X). p(b).")
        clauses = kb.clauses(("p", 1))
        assert [c.is_fact for c in clauses] == [True, False, True]

    def test_assertz_appends(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a).")
        kb.assertz(read_term("p(b)"))
        assert [str(c.head) for c in kb.clauses(("p", 1))] == ["p(a)", "p(b)"]

    def test_asserta_prepends(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a).")
        kb.asserta(read_term("p(b)"))
        assert [str(c.head) for c in kb.clauses(("p", 1))] == ["p(b)", "p(a)"]

    def test_retract_first_match(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a). p(b). p(a).")
        assert kb.retract(read_term("p(a)"))
        assert [str(c.head) for c in kb.clauses(("p", 1))] == ["p(b)", "p(a)"]
        assert not kb.retract(read_term("p(zzz)"))

    def test_retract_rule(self):
        kb = KnowledgeBase()
        kb.consult_text("p(X) :- q(X). p(a).")
        assert kb.retract(parse("p(X) :- q(X)"))
        assert all(c.is_fact for c in kb.clauses(("p", 1)))

    def test_unknown_predicate(self):
        kb = KnowledgeBase()
        with pytest.raises(UnknownPredicateError):
            kb.clauses(("missing", 3))
        assert not kb.has_predicate(("missing", 3))

    def test_index_lazily_built_and_invalidated(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a).")
        store = kb.store(("p", 1))
        index_v1 = store.index
        assert len(index_v1) == 1
        kb.assertz(read_term("p(b)"))
        index_v2 = store.index
        assert len(index_v2) == 2

    def test_modules_and_residency(self):
        kb = KnowledgeBase()
        kb.consult_text("small(a).", module="tiny")
        kb.module("tiny").large_threshold_bytes = 10_000
        assert kb.residency(("small", 1)) == Residency.MEMORY
        kb.module("tiny").pin(Residency.DISK)
        assert kb.residency(("small", 1)) == Residency.DISK

    def test_sync_to_disk(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a). p(b).", module="big")
        kb.module("big").pin(Residency.DISK)
        written = kb.sync_to_disk()
        assert "clauses:p/1" in written
        assert "index:p/1" in written
        data, _ = kb.disk.read_extent("clauses:p/1")
        assert data == kb.store(("p", 1)).clause_file.to_bytes()

    def test_memory_predicates_not_synced(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a).")
        assert kb.sync_to_disk() == []

    def test_size_accounting(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a). q(b, c).")
        assert kb.size_bytes() > 0
        assert kb.clause_count() == 2

    def test_consult_clauses(self):
        kb = KnowledgeBase()
        clauses = [parse("p(a)"), parse("p(b)")]
        assert kb.consult_clauses(clauses) == 2
        assert kb.clause_count() == 2
