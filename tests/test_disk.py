"""Tests for the simulated disk subsystem."""

import pytest

from repro.disk import (
    FUJITSU_M2351A,
    MICROPOLIS_1325,
    DiskFullError,
    DiskGeometry,
    DiskSim,
    DriveModel,
)


class TestGeometry:
    def test_capacities(self):
        geometry = DiskGeometry(
            bytes_per_sector=512,
            sectors_per_track=17,
            tracks_per_cylinder=8,
            cylinders=1024,
        )
        assert geometry.track_bytes == 512 * 17
        assert geometry.cylinder_bytes == 512 * 17 * 8
        assert geometry.capacity_bytes == 512 * 17 * 8 * 1024
        assert geometry.total_tracks == 8 * 1024

    def test_locate(self):
        geometry = DiskGeometry(512, 10, 4, 100)
        assert geometry.locate(0) == (0, 0, 0)
        assert geometry.locate(geometry.track_bytes) == (0, 1, 0)
        assert geometry.locate(geometry.cylinder_bytes + 5) == (1, 0, 5)
        with pytest.raises(ValueError):
            geometry.locate(geometry.capacity_bytes)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskGeometry(0, 10, 4, 100)


class TestDriveModels:
    def test_fujitsu_is_the_fast_2mb_case(self):
        assert FUJITSU_M2351A.transfer_rate_bytes_per_sec == pytest.approx(
            2_000_000
        )

    def test_micropolis_slower(self):
        assert (
            MICROPOLIS_1325.transfer_rate_bytes_per_sec
            < FUJITSU_M2351A.transfer_rate_bytes_per_sec
        )

    def test_rm_covers_one_track(self):
        """The 32 KB Result Memory must hold a full track of either drive."""
        for drive in (FUJITSU_M2351A, MICROPOLIS_1325):
            assert drive.geometry.track_bytes <= 32 * 1024

    def test_timing_model(self):
        drive = FUJITSU_M2351A
        assert drive.rotation_s == pytest.approx(60 / 3961)
        one_mb = drive.transfer_time_s(1_000_000)
        assert one_mb == pytest.approx(0.5)
        assert drive.read_time_s(1_000_000) > one_mb  # positioning added

    def test_validation(self):
        with pytest.raises(ValueError):
            DriveModel(
                name="bad",
                geometry=FUJITSU_M2351A.geometry,
                transfer_rate_bytes_per_sec=0,
                average_seek_s=0.01,
                rpm=3600,
            )


class TestDiskSim:
    def test_write_and_read_extent(self):
        disk = DiskSim()
        disk.write_extent("blob", b"hello world")
        data, stats = disk.read_extent("blob")
        assert data == b"hello world"
        assert stats.bytes_transferred == 11
        assert stats.total_time_s > 0

    def test_extent_replacement_in_place(self):
        disk = DiskSim()
        first = disk.write_extent("blob", b"0123456789")
        second = disk.write_extent("blob", b"01234")
        assert second.start == first.start
        data, _ = disk.read_extent("blob")
        assert data == b"01234"

    def test_growing_extent_reallocates(self):
        disk = DiskSim()
        disk.write_extent("a", b"xx")
        disk.write_extent("b", b"yy")
        grown = disk.write_extent("a", b"x" * 100)
        assert grown.length == 100
        data, _ = disk.read_extent("a")
        assert data == b"x" * 100

    def test_missing_extent(self):
        disk = DiskSim()
        with pytest.raises(KeyError):
            disk.extent("nope")
        assert "nope" not in disk

    def test_disk_full(self):
        disk = DiskSim()
        with pytest.raises(DiskFullError):
            disk.write_extent(
                "huge", b"\0" * (disk.drive.geometry.capacity_bytes + 1)
            )

    def test_stream_whole_extent(self):
        disk = DiskSim()
        disk.write_extent("blob", b"abcdef")
        records, stats = disk.stream_records("blob")
        assert list(records) == [b"abcdef"]
        assert stats.seeks == 1

    def test_stream_selected_records(self):
        disk = DiskSim()
        disk.write_extent("blob", b"AAABBBCCCDDD")
        records, stats = disk.stream_records("blob", [(0, 3), (6, 3)])
        assert list(records) == [b"AAA", b"CCC"]
        assert stats.seeks == 2  # non-contiguous: one reposition
        assert stats.bytes_transferred == 6

    def test_contiguous_records_single_seek(self):
        disk = DiskSim()
        disk.write_extent("blob", b"AAABBBCCC")
        _, stats = disk.stream_records("blob", [(0, 3), (3, 3), (6, 3)])
        assert stats.seeks == 1

    def test_selective_vs_full_timing(self):
        """Few selective reads beat a full scan; many do not."""
        disk = DiskSim()
        record = b"r" * 64
        disk.write_extent("blob", record * 1000)
        _, full = disk.stream_records("blob")
        _, few = disk.stream_records("blob", [(0, 64)])
        assert few.total_time_s < full.total_time_s
        scattered = [(i * 128, 64) for i in range(400)]
        _, many = disk.stream_records("blob", scattered)
        assert many.total_time_s > full.total_time_s  # seek-bound

    def test_track_alignment(self):
        disk = DiskSim()
        track = disk.drive.geometry.track_bytes
        disk.write_extent("small", b"x" * 100)
        aligned = disk.write_extent("aligned", b"y" * 50, align_track=True)
        assert aligned.start % track == 0
        assert aligned.start >= 100

    def test_alignment_noop_at_boundary(self):
        disk = DiskSim()
        first = disk.write_extent("a", b"z", align_track=True)
        assert first.start == 0

    def test_track_of(self):
        disk = DiskSim()
        disk.write_extent("blob", b"\0" * disk.drive.geometry.track_bytes * 2)
        cylinder0, track0 = disk.track_of("blob", 0)
        cylinder1, track1 = disk.track_of(
            "blob", disk.drive.geometry.track_bytes
        )
        assert (cylinder0, track0) != (cylinder1, track1)
