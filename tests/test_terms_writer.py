"""Unit tests for the term writer, including reader round-trips."""

import pytest
from hypothesis import given

from repro.terms import (
    Atom,
    Int,
    atom_needs_quotes,
    make_list,
    read_term,
    term_to_string,
)
from tests.strategies import terms


class TestBasicRendering:
    def test_atom(self):
        assert term_to_string(Atom("foo")) == "foo"

    def test_quoted_atom(self):
        assert term_to_string(Atom("hello world")) == "'hello world'"
        assert term_to_string(Atom("Abc")) == "'Abc'"
        assert term_to_string(Atom("")) == "''"

    def test_solo_atoms_unquoted(self):
        assert term_to_string(Atom("[]")) == "[]"
        assert term_to_string(Atom("!")) == "!"

    def test_symbolic_atom_unquoted(self):
        assert term_to_string(Atom("++")) == "++"

    def test_numbers(self):
        assert term_to_string(Int(-3)) == "-3"
        assert term_to_string(read_term("2.5")) == "2.5"

    def test_struct(self):
        assert term_to_string(read_term("f(a, g(X))")) == "f(a,g(X))"

    def test_list(self):
        assert term_to_string(read_term("[1, 2 | T]")) == "[1,2|T]"
        assert term_to_string(make_list([])) == "[]"

    def test_operators_infix(self):
        assert term_to_string(read_term("a :- b, c")) == "a:-b,c"
        assert term_to_string(read_term("1 + 2 * 3")) == "1+2*3"
        assert term_to_string(read_term("(1 + 2) * 3")) == "(1+2)*3"

    def test_alpha_operator_spacing(self):
        assert term_to_string(read_term("X is 1 + 2")) == "X is 1+2"

    def test_negation_prefix(self):
        assert term_to_string(read_term("\\+ foo")) == "\\+foo"

    def test_curly(self):
        assert term_to_string(read_term("{a,b}")) == "{a,b}"

    def test_str_dunder_delegates(self):
        assert str(read_term("f(X)")) == "f(X)"


class TestQuoting:
    @pytest.mark.parametrize(
        "name,needs",
        [
            ("abc", False),
            ("aBC_2", False),
            ("+-", False),
            ("Hello", True),
            ("hello world", True),
            ("_x", True),
            ("12ab", True),
            ("", True),
        ],
    )
    def test_needs_quotes(self, name, needs):
        assert atom_needs_quotes(name) is needs

    def test_escaped_roundtrip(self):
        atom = Atom("don't\\stop")
        assert read_term(term_to_string(atom)) == atom


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "foo",
            "f(a,b,c)",
            "[1,2,3]",
            "[a|T]",
            "f(g(h(1)),[X,Y|Z])",
            "a:-b,c,d",
            "f(X,X,Y)",
            "p([[1],[2,3]],'quoted atom')",
            "-(3.5)",
            "1+2*3-4",
            "\\+f(X)",
        ],
    )
    def test_examples(self, text):
        term = read_term(text)
        assert read_term(term_to_string(term)) == term

    @given(terms())
    def test_property_roundtrip(self, term):
        assert read_term(term_to_string(term)) == term
