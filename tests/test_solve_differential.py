"""Differential square: interpreter / ZIP VM / CRS-backed solve / net solve.

Hypothesis generates small terminating programs (a DAG of ``edge/2``
facts plus recursive closure, cut, negation, and shared-variable rules);
every query must produce the *identical answer sequence* on all four
paths:

1. the tree-walking interpreter over a single KnowledgeBase;
2. the compiled ZIP machine over the same KB;
3. ``SolveEngine`` pulling candidates through a predicate-sharded
   cluster (both engine selectors);
4. the ``solve`` verb over the wire protocol, answers streamed one
   frame at a time.

Predicate sharding keeps each procedure whole on one shard, so the
cluster's candidate order equals single-KB clause order and sequence
equality (not just set equality) is the contract under test.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.engine import PrologMachine, SolveEngine
from repro.net import BackgroundService, RetrievalService
from repro.storage import KnowledgeBase
from repro.terms import read_term, term_to_string

RULES = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
reach(X) :- path(n0, X).
first_hop(X) :- edge(n0, X), !.
sink(X) :- node(X), \\+ edge(X, _).
linked(X, Z) :- edge(X, Y), edge(Y, Z).
"""

QUERIES = [
    "path(n0, X)",
    "path(X, Y)",
    "reach(X)",
    "first_hop(X)",
    "sink(X)",
    "linked(X, Z)",
    "edge(X, Y), path(Y, Z)",
]


@st.composite
def dag_programs(draw):
    """Edge facts over nodes n0..nK, always acyclic (i -> j needs i < j)."""
    node_count = draw(st.integers(min_value=3, max_value=6))
    pairs = st.tuples(
        st.integers(0, node_count - 2), st.integers(1, node_count - 1)
    ).filter(lambda p: p[0] < p[1])
    edges = draw(
        st.lists(pairs, min_size=2, max_size=8, unique=True)
    )
    lines = [f"node(n{i})." for i in range(node_count)]
    lines += [f"edge(n{a}, n{b})." for a, b in edges]
    return "\n".join(lines) + "\n" + RULES


def render(solution: dict) -> dict:
    return {name: term_to_string(value) for name, value in solution.items()}


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=dag_programs())
def test_in_process_square_agrees(program):
    kb = KnowledgeBase()
    kb.consult_text(program)
    machine = PrologMachine(kb, unknown_predicates="fail")
    cluster = ShardedRetrievalServer(2, policy=ShardingPolicy.PREDICATE)
    cluster.consult_text(program)
    zip_solve = SolveEngine(cluster, engine="zip")
    interp_solve = SolveEngine(cluster, engine="interp")
    for query in QUERIES:
        reference = [render(s) for s in machine.solve(read_term(query))]
        compiled = [render(s) for s in machine.compiled_solve(read_term(query))]
        assert compiled == reference, f"zipvm vs interp: {query}"
        assert [
            render(s) for s in zip_solve.solve(read_term(query))
        ] == reference, f"cluster zip vs interp: {query}"
        assert [
            render(s) for s in interp_solve.solve(read_term(query))
        ] == reference, f"cluster interp vs interp: {query}"


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=dag_programs())
def test_net_solve_streams_the_interpreter_sequence(program):
    from repro.net import RetrievalClient

    kb = KnowledgeBase()
    kb.consult_text(program)
    machine = PrologMachine(kb, unknown_predicates="fail")
    cluster = ShardedRetrievalServer(2, policy=ShardingPolicy.PREDICATE)
    cluster.consult_text(program)
    service = RetrievalService(cluster, max_in_flight=2, queue_limit=4)
    with BackgroundService(service) as background:
        host, port = background.service.address
        with RetrievalClient(host, port) as client:
            for query in QUERIES:
                reference = [
                    render(s) for s in machine.solve(read_term(query))
                ]
                for engine in ("zip", "interp"):
                    streamed = [
                        render(s)
                        for s in client.solve(read_term(query), engine=engine)
                    ]
                    assert streamed == reference, f"net {engine}: {query}"


@pytest.mark.parametrize("seed_nodes", [3, 4, 5])
def test_recursive_closure_square_on_dense_dag(seed_nodes):
    """A deterministic dense DAG as a fixed anchor next to the fuzzing."""
    lines = [f"node(n{i})." for i in range(seed_nodes)]
    lines += [
        f"edge(n{a}, n{b})."
        for a in range(seed_nodes)
        for b in range(a + 1, seed_nodes)
    ]
    program = "\n".join(lines) + "\n" + RULES
    kb = KnowledgeBase()
    kb.consult_text(program)
    machine = PrologMachine(kb, unknown_predicates="fail")
    cluster = ShardedRetrievalServer(3, policy=ShardingPolicy.PREDICATE)
    cluster.consult_text(program)
    engine = SolveEngine(cluster)
    for query in QUERIES:
        reference = [render(s) for s in machine.solve(read_term(query))]
        assert [
            render(s) for s in engine.solve(read_term(query))
        ] == reference, query
