"""Segment round-trips: mmap-attached shards equal their source KB.

The multi-core data plane works only if :func:`repro.parallel.write_segments`
followed by :func:`repro.parallel.attach_kb` is a faithful, zero-copy
reconstruction: byte-identical clause records, an FS1 index whose packed
columns select exactly the entries the builder's did, and a
:class:`~repro.crs.ClauseRetrievalServer` whose candidates *and modelled
stats* cannot be told apart from one over the original knowledge base.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crs import ClauseRetrievalServer, SearchMode
from repro.parallel import SharedKnowledgeBase, attach_kb, write_segments
from repro.storage import KnowledgeBase, Residency
from repro.terms import Atom, Clause, Struct, Var, read_term
from tests.strategies import clause_heads

PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(a, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
likes(mary, wine). likes(john, X) :- likes(X, wine).
wide(a, b, c, d, e, f, g, h, i, j, k, l, m, n).
"""

ALL_MODES = list(SearchMode)


def build_kb(text: str = PROGRAM) -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.consult_text(text)
    return kb


@pytest.fixture()
def roundtrip(tmp_path):
    kb = build_kb()
    write_segments(kb, tmp_path / "seg")
    shared = attach_kb(tmp_path / "seg")
    yield kb, shared
    shared.close()


class TestClauseFileFidelity:
    def test_record_images_are_byte_identical(self, roundtrip):
        kb, shared = roundtrip
        for indicator in kb.predicates():
            original = kb.store(indicator).clause_file
            attached = shared.store(indicator).clause_file
            assert len(attached) == len(original)
            assert attached.to_bytes() == original.to_bytes()
            assert attached.record_addresses() == original.record_addresses()
            assert attached.record_lengths() == original.record_lengths()
            for position in range(len(original)):
                assert bytes(attached.record_bytes(position)) == bytes(
                    original.record_bytes(position)
                )
                assert attached.record(position) == original.record(position)

    def test_decoded_clauses_survive(self, roundtrip):
        kb, shared = roundtrip
        for indicator in kb.predicates():
            original = kb.store(indicator).clause_file
            attached = shared.store(indicator).clause_file
            for position in range(len(original)):
                assert str(attached.decode_clause(position)) == str(
                    original.decode_clause(position)
                )

    def test_shared_files_are_immutable(self, roundtrip):
        _, shared = roundtrip
        clause_file = shared.store(("edge", 2)).clause_file
        with pytest.raises(TypeError):
            clause_file.append(Clause(Struct("edge", (Atom("x"), Atom("y")))))

    def test_record_bytes_is_a_view_not_a_copy(self, roundtrip):
        _, shared = roundtrip
        clause_file = shared.store(("edge", 2)).clause_file
        record = clause_file.record_bytes(0)
        assert isinstance(record, memoryview)


class TestIndexFidelity:
    def test_packed_columns_scan_like_the_builder(self, roundtrip):
        kb, shared = roundtrip
        queries = [
            read_term("edge(a, X)"),
            read_term("edge(X, Y)"),
            read_term("likes(X, wine)"),
            read_term("path(a, Z)"),
        ]
        for goal in queries:
            indicator = (goal.functor, goal.arity)
            original = kb.store(indicator).index
            attached = shared.store(indicator).index
            codeword = original.scheme.query_codeword(goal)
            assert attached.scan(codeword) == original.scan(codeword)
            assert attached.bitsliced.scan(codeword) == original.bitsliced.scan(
                codeword
            )

    def test_entry_rows_parse_identically(self, roundtrip):
        kb, shared = roundtrip
        for indicator in kb.predicates():
            original = kb.store(indicator).index
            attached = shared.store(indicator).index
            assert len(attached) == len(original)
            mask_field = (1 << (original.scheme.mask_bytes * 8)) - 1
            for position in range(len(original)):
                theirs = original.entry_at(position)
                ours = attached.entry_at(position)
                # arg_bits are a builder-side derivation the serialised
                # row drops by design; matching reads only bits + mask.
                assert ours.address == theirs.address
                assert ours.codeword.bits == theirs.codeword.bits
                assert ours.codeword.mask == theirs.codeword.mask & mask_field

    def test_shared_index_rejects_writes(self, roundtrip):
        _, shared = roundtrip
        index = shared.store(("edge", 2)).index
        with pytest.raises(TypeError):
            index.add(Struct("edge", (Atom("x"), Atom("y"))), 0)


def result_fingerprint(result):
    return (
        sorted(str(c) for c in result.candidates),
        dataclasses.astuple(result.stats),
    )


class TestRetrievalEquivalence:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_candidates_and_stats_match_per_mode(self, tmp_path, mode):
        kb = build_kb()
        write_segments(kb, tmp_path / "seg")
        shared = attach_kb(tmp_path / "seg")
        try:
            original = ClauseRetrievalServer(kb, cache_size=0)
            attached = ClauseRetrievalServer(shared, cache_size=0)
            for goal_text in ("edge(a, X)", "edge(X, Y)", "likes(X, wine)"):
                goal = read_term(goal_text)
                expected = result_fingerprint(original.retrieve(goal, mode=mode))
                got = result_fingerprint(attached.retrieve(goal, mode=mode))
                assert got == expected, goal_text
        finally:
            shared.close()

    def test_disk_residency_times_match(self, tmp_path):
        kb = build_kb()
        write_segments(kb, tmp_path / "seg")
        shared = attach_kb(tmp_path / "seg")
        try:
            for store in (kb, shared):
                store.module("user").pin(Residency.DISK)
                store.sync_to_disk()
            original = ClauseRetrievalServer(kb, cache_size=0)
            attached = ClauseRetrievalServer(shared, cache_size=0)
            goal = read_term("edge(a, X)")
            expected = original.retrieve(goal)
            got = attached.retrieve(goal)
            assert result_fingerprint(got) == result_fingerprint(expected)
            assert got.stats.disk_time_s == expected.stats.disk_time_s
        finally:
            shared.close()


class TestCopyOnWriteMutation:
    def test_add_clause_materializes_privately(self, tmp_path):
        kb = build_kb()
        write_segments(kb, tmp_path / "seg")
        shared = attach_kb(tmp_path / "seg")
        try:
            before = (tmp_path / "seg").glob("*")
            images = {p.name: p.read_bytes() for p in before if p.is_file()}
            shared.add_clause(Clause(Struct("edge", (Atom("d"), Atom("e")))))
            server = ClauseRetrievalServer(shared, cache_size=0)
            result = server.retrieve(read_term("edge(d, X)"))
            assert sorted(str(c) for c in result.candidates) == ["edge(d,e)."]
            # the segment files on disk are never written after export
            for path in (tmp_path / "seg").glob("*"):
                if path.is_file():
                    assert path.read_bytes() == images[path.name], path.name
        finally:
            shared.close()

    def test_asserta_and_retract_work_on_shared_stores(self, tmp_path):
        kb = build_kb()
        write_segments(kb, tmp_path / "seg")
        shared = attach_kb(tmp_path / "seg")
        try:
            shared.asserta(Clause(Struct("edge", (Atom("zz"), Atom("a")))))
            removed = shared.retract_matching(
                Clause(Struct("edge", (Atom("a"), Var("Q"))))
            )
            assert removed is not None
            server = ClauseRetrievalServer(shared, cache_size=0)
            result = server.retrieve(read_term("edge(X, Y)"))
            mirror = build_kb()
            mirror.asserta(Clause(Struct("edge", (Atom("zz"), Atom("a")))))
            mirror.retract_matching(Clause(Struct("edge", (Atom("a"), Var("Q")))))
            expected = ClauseRetrievalServer(mirror, cache_size=0).retrieve(
                read_term("edge(X, Y)")
            )
            assert sorted(str(c) for c in result.candidates) == sorted(
                str(c) for c in expected.candidates
            )
        finally:
            shared.close()


class TestRoundTripProperty:
    @given(
        heads=st.lists(
            clause_heads(functor="p", arity=3), min_size=1, max_size=12
        ),
        goal=clause_heads(functor="p", arity=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_kb_round_trips(self, tmp_path_factory, heads, goal):
        kb = KnowledgeBase()
        kb.consult_clauses([Clause(head=h) for h in heads])
        directory = tmp_path_factory.mktemp("seg")
        write_segments(kb, directory)
        shared = attach_kb(directory)
        try:
            assert isinstance(shared, SharedKnowledgeBase)
            original = ClauseRetrievalServer(kb, cache_size=0)
            attached = ClauseRetrievalServer(shared, cache_size=0)
            for mode in ALL_MODES:
                expected = result_fingerprint(original.retrieve(goal, mode=mode))
                got = result_fingerprint(attached.retrieve(goal, mode=mode))
                assert got == expected, mode
        finally:
            shared.close()
