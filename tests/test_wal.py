"""Unit tests for `repro.storage.wal` and the engine's durability wiring.

Crash-by-SIGKILL coverage lives in ``test_wal_crash.py``; this file
exercises the pieces in-process: the record codec, torn-tail detection,
group commit, engine recovery, compaction, WAL-shipped catch-up deltas,
and the property-based round trip against an in-memory oracle.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardedRetrievalServer
from repro.cluster.server import MutationLogOverflow
from repro.obs import Instrumentation
from repro.storage import (
    DurabilityOptions,
    KnowledgeBase,
    kb_fingerprint,
    load_kb,
    save_kb,
    wal_dump,
)
from repro.storage.wal import (
    WalError,
    WalRecord,
    WriteAheadLog,
    _scan_segment,
    encode_record,
)
from repro.terms import clause_from_term, read_term


def _clause(text: str):
    return clause_from_term(read_term(text))


def _engine_fingerprint(engine) -> list[dict]:
    """Per-shard content fingerprint (placement included on purpose)."""
    return [kb_fingerprint(shard.kb) for shard in engine.shards]


def _durable(tmp_path, name="store", **kwargs) -> DurabilityOptions:
    kwargs.setdefault("auto_compact", False)
    return DurabilityOptions(directory=tmp_path / name, **kwargs)


class TestRecordCodec:
    RECORDS = [
        WalRecord(1, "assertz", _clause("f(a)")),
        WalRecord(2, "asserta", _clause("g(X, [1, 2.5, 'odd atom'])")),
        WalRecord(3, "retract", _clause("f(a)"), write_id="w:1"),
        WalRecord(4, "assertz", _clause("p(X) :- q(X), r(X)"),
                  module="aux"),
    ]

    def test_roundtrip_through_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_at(0, None)
        for record in self.RECORDS:
            wal.stage(record)
        wal.wait_durable(4)
        got = wal.records_since(0)
        wal.close()
        assert [r.seq for r in got] == [1, 2, 3, 4]
        assert [r.op for r in got] == [
            "assertz", "asserta", "retract", "assertz"
        ]
        assert [r.write_id for r in got] == [None, None, "w:1", None]
        assert [r.module for r in got] == ["user", "user", "user", "aux"]
        for want, have in zip(self.RECORDS, got):
            assert str(have.clause) == str(want.clause)

    def test_records_since_filters(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_at(0, None)
        for record in self.RECORDS:
            wal.stage(record)
        wal.wait_durable(4)
        assert [r.seq for r in wal.records_since(2)] == [3, 4]
        wal.close()

    def test_reload_is_not_encodable(self):
        # ``reload`` (adopt_kb) is deliberately outside the record set:
        # the adopted KB exists only in memory, so the engine snapshots
        # synchronously instead of logging.
        with pytest.raises(WalError):
            encode_record(WalRecord(1, "reload", _clause("f(a)")))

    def test_stage_out_of_order_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_at(0, None)
        wal.stage(WalRecord(1, "assertz", _clause("f(a)")))
        with pytest.raises(WalError):
            wal.stage(WalRecord(1, "assertz", _clause("f(b)")))
        wal.close()


class TestTornTail:
    def _sealed_segment(self, tmp_path, count=3):
        wal = WriteAheadLog(tmp_path)
        wal.open_at(0, None)
        for i in range(1, count + 1):
            wal.stage(WalRecord(i, "assertz", _clause(f"f(k{i})")))
        wal.wait_durable(count)
        wal.close()
        (segment,) = tmp_path.glob("wal-*.log")
        return segment

    def test_garbage_tail_detected_and_confined(self, tmp_path):
        segment = self._sealed_segment(tmp_path)
        clean_size = segment.stat().st_size
        with open(segment, "ab") as handle:
            handle.write(b"\x99" * 11)  # a torn, partial frame
        scan = _scan_segment(segment)
        assert scan.torn
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.valid_bytes == clean_size

    def test_truncated_record_drops_only_the_tail(self, tmp_path):
        segment = self._sealed_segment(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-5])  # tear the last record mid-body
        scan = _scan_segment(segment)
        assert scan.torn
        assert [r.seq for r in scan.records] == [1, 2]

    def test_corrupt_crc_stops_the_scan(self, tmp_path):
        segment = self._sealed_segment(tmp_path)
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the last record's body
        segment.write_bytes(bytes(data))
        scan = _scan_segment(segment)
        assert scan.torn
        assert [r.seq for r in scan.records] == [1, 2]

    def test_engine_recovery_truncates_torn_tail(self, tmp_path):
        opts = _durable(tmp_path)
        engine = ShardedRetrievalServer(1, "predicate", durability=opts)
        for i in range(1, 4):
            engine.assertz(read_term(f"f(k{i})"))
        engine.close()
        (segment,) = (tmp_path / "store").glob("wal-*.log")
        segment.write_bytes(segment.read_bytes()[:-5])

        recovered = ShardedRetrievalServer(1, "predicate", durability=opts)
        assert recovered.version == 2
        assert recovered.clause_count() == 2
        assert recovered.recovered.discarded_bytes > 0
        # Appends continue cleanly past the physical truncation point.
        recovered.assertz(read_term("f(k3b)"))
        recovered.close()
        third = ShardedRetrievalServer(1, "predicate", durability=opts)
        assert third.version == 3
        assert third.clause_count() == 3
        third.close()


class TestGroupCommit:
    def test_concurrent_writers_all_durable(self, tmp_path):
        obs = Instrumentation()
        opts = _durable(tmp_path)
        engine = ShardedRetrievalServer(
            1, "predicate", durability=opts, obs=obs
        )
        total = 48

        def writer(base: int) -> None:
            for i in range(base, base + 8):
                engine.assertz(read_term(f"f(k{i})"))

        threads = [
            threading.Thread(target=writer, args=(base,))
            for base in range(0, total, 8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine.close()

        appends = obs.registry.counter("wal.appends").value
        fsyncs = obs.registry.counter("wal.fsyncs").value
        assert appends == total
        assert 1 <= fsyncs <= appends  # group commit batches acks

        recovered = ShardedRetrievalServer(1, "predicate", durability=opts)
        assert recovered.clause_count() == total
        assert recovered.version == total
        recovered.close()


class TestEngineRecovery:
    PROGRAM = "f(a). f(b). g(1). p(X) :- f(X)."

    @pytest.mark.parametrize("flush", ["fsync", "os", "none"])
    def test_clean_close_roundtrip(self, tmp_path, flush):
        opts = _durable(tmp_path, flush=flush)
        engine = ShardedRetrievalServer(2, "predicate", durability=opts)
        engine.consult_text(self.PROGRAM)
        engine.assertz(read_term("f(c)"))
        assert engine.retract(read_term("f(a)"))
        want = _engine_fingerprint(engine)
        version = engine.version
        engine.close()

        recovered = ShardedRetrievalServer(2, "predicate", durability=opts)
        assert recovered.version == version
        assert _engine_fingerprint(recovered) == want
        got = recovered.retrieve(read_term("f(X)"))
        assert sorted(str(c) for c in got.candidates) == ["f(b).", "f(c)."]
        recovered.close()

    def test_write_id_memo_survives_recovery(self, tmp_path):
        opts = _durable(tmp_path)
        engine = ShardedRetrievalServer(1, "predicate", durability=opts)
        engine.assertz(read_term("f(a)"), write_id="w:1")
        engine.close()

        recovered = ShardedRetrievalServer(1, "predicate", durability=opts)
        recovered.assertz(read_term("f(a)"), write_id="w:1")  # duplicate
        assert recovered.clause_count() == 1
        assert recovered.version == 1
        recovered.close()

    def test_close_is_idempotent(self, tmp_path):
        engine = ShardedRetrievalServer(
            1, "predicate", durability=_durable(tmp_path)
        )
        engine.assertz(read_term("f(a)"))
        engine.close()
        engine.close()

    def test_volatile_engine_has_no_store(self, tmp_path):
        engine = ShardedRetrievalServer(1, "predicate")
        assert engine.recovered is None
        engine.assertz(read_term("f(a)"))
        engine.close()  # no-op, must not raise

    def test_adopt_kb_is_durable(self, tmp_path):
        opts = _durable(tmp_path)
        engine = ShardedRetrievalServer(1, "predicate", durability=opts)
        engine.consult_text("old(1).")
        kb = KnowledgeBase()
        kb.consult_text(self.PROGRAM)
        engine.adopt_kb(kb)
        engine.assertz(read_term("f(c)"))  # a post-adoption WAL record
        want = _engine_fingerprint(engine)
        version = engine.version
        engine.close()

        recovered = ShardedRetrievalServer(1, "predicate", durability=opts)
        assert recovered.version == version
        assert _engine_fingerprint(recovered) == want
        recovered.close()


class TestCompaction:
    def test_compact_folds_wal_into_snapshot(self, tmp_path):
        opts = _durable(tmp_path)
        engine = ShardedRetrievalServer(2, "predicate", durability=opts)
        engine.consult_text("f(a). f(b). g(1).")
        engine.retract(read_term("f(a)"))
        want = _engine_fingerprint(engine)
        seq = engine.compact()
        assert seq == engine.version == 4
        assert engine.durable_store.snapshot_seq == 4
        # Compaction again with nothing new is a no-op at the same seq.
        assert engine.compact() == 4
        engine.assertz(read_term("f(c)"))
        engine.close()

        recovered = ShardedRetrievalServer(2, "predicate", durability=opts)
        assert recovered.version == 5
        assert recovered.recovered.snapshot_seq == 4
        assert len(recovered.recovered.records) == 1  # the WAL tail
        recovered.retract(read_term("f(c)"))
        assert _engine_fingerprint(recovered) == want
        recovered.close()

    def test_auto_compaction_triggers(self, tmp_path):
        opts = DurabilityOptions(
            directory=tmp_path / "store",
            compact_min_bytes=1,
            compact_min_records=4,
            compact_interval_s=0.01,
            auto_compact=True,
        )
        engine = ShardedRetrievalServer(1, "predicate", durability=opts)
        for i in range(16):
            engine.assertz(read_term(f"f(k{i})"))
        deadline = threading.Event()
        for _ in range(200):
            if engine.durable_store.snapshot_seq > 0:
                break
            deadline.wait(0.01)
        assert engine.durable_store.snapshot_seq > 0
        engine.close()

        recovered = ShardedRetrievalServer(1, "predicate", durability=opts)
        assert recovered.clause_count() == 16
        recovered.close()

    def test_wal_dump_renders(self, tmp_path):
        opts = _durable(tmp_path)
        engine = ShardedRetrievalServer(1, "predicate", durability=opts)
        engine.assertz(read_term("f(a)"), write_id="w:1")
        engine.compact()
        engine.assertz(read_term("f(b)"))
        engine.close()
        text = wal_dump(tmp_path / "store")
        assert "snapshot-" in text
        assert "f(b)." in text
        assert "w:1" not in text  # folded into the snapshot, purged


class TestWalShipping:
    def test_catchup_rides_wal_past_deque_eviction(self, tmp_path):
        engine = ShardedRetrievalServer(
            1, "predicate", durability=_durable(tmp_path),
            mutation_log_size=2,
        )
        for i in range(10):
            engine.assertz(read_term(f"f(k{i})"), write_id=f"w:{i}")
        # The in-memory deque only holds the last 2; the WAL serves all.
        records = engine.mutations_since(0)
        assert [r.seq for r in records] == list(range(1, 11))
        assert [r.write_id for r in records] == [f"w:{i}" for i in range(10)]
        engine.close()

    def test_catchup_overflows_below_snapshot(self, tmp_path):
        engine = ShardedRetrievalServer(
            1, "predicate", durability=_durable(tmp_path),
            mutation_log_size=2,
        )
        for i in range(6):
            engine.assertz(read_term(f"f(k{i})"))
        engine.compact()
        engine.assertz(read_term("f(tail)"))
        # Below the snapshot the log is gone — a reader must re-snapshot.
        with pytest.raises(MutationLogOverflow):
            engine.mutations_since(2)
        # The post-snapshot tail still ships fine.
        assert [r.seq for r in engine.mutations_since(6)] == [7]
        engine.close()

    def test_volatile_engine_still_overflows(self, tmp_path):
        engine = ShardedRetrievalServer(
            1, "predicate", mutation_log_size=2
        )
        for i in range(6):
            engine.assertz(read_term(f"f(k{i})"))
        with pytest.raises(MutationLogOverflow):
            engine.mutations_since(0)


class TestSaveKbDurable:
    def test_durable_save_roundtrips_and_leaves_no_temp(self, tmp_path):
        kb = KnowledgeBase()
        kb.consult_text("f(a). f(b). g(X) :- f(X).")
        save_kb(kb, tmp_path / "kbdir", durable=True)
        names = {p.name for p in (tmp_path / "kbdir").iterdir()}
        assert "manifest.txt" in names
        assert not any(name.endswith(".tmp") for name in names)
        restored = load_kb(tmp_path / "kbdir")
        assert kb_fingerprint(restored) == kb_fingerprint(kb)


# -- property-based round trip ------------------------------------------------

_OPS = st.sampled_from(["assertz", "asserta", "retract"])


@settings(max_examples=25, deadline=None)
@given(
    plan=st.lists(
        st.tuples(_OPS, st.integers(min_value=0, max_value=7)),
        min_size=1,
        max_size=24,
    )
)
def test_recovery_matches_oracle(tmp_path_factory, plan):
    """Any mutation sequence recovers to exactly the oracle's state.

    The same ops are applied to a durable engine and to a plain
    in-memory engine (same shard count and policy, so identical
    placement); after close + recovery the per-shard fingerprints must
    be identical — no lost, duplicated or reordered mutation.
    """
    tmp_path = tmp_path_factory.mktemp("walprop")
    opts = DurabilityOptions(directory=tmp_path / "store", auto_compact=False)
    durable = ShardedRetrievalServer(2, "predicate", durability=opts)
    oracle = ShardedRetrievalServer(2, "predicate")
    try:
        for op, key in plan:
            term = read_term(f"f(k{key})")
            if op == "assertz":
                durable.assertz(term)
                oracle.assertz(term)
            elif op == "asserta":
                durable.asserta(term)
                oracle.asserta(term)
            else:
                assert durable.retract(term) == oracle.retract(term)
        assert durable.version == oracle.version
    finally:
        durable.close()

    recovered = ShardedRetrievalServer(2, "predicate", durability=opts)
    try:
        assert recovered.version == oracle.version
        assert _engine_fingerprint(recovered) == _engine_fingerprint(oracle)
    finally:
        recovered.close()
