"""Tests for query-run reports and retrieval tracing."""

from repro.engine import PrologMachine
from repro.obs import Instrumentation, MetricsRegistry
from repro.report import (
    format_metrics,
    format_query_report,
    format_retrieval,
    headline_counters,
)
from repro.storage import KnowledgeBase, Residency


def traced_machine():
    kb = KnowledgeBase()
    kb.consult_text(
        " ".join(f"item(i{n}, cat{n % 5})." for n in range(100))
        + " lookup(X) :- item(X, cat3).",
        module="data",
    )
    kb.module("data").pin(Residency.DISK)
    kb.sync_to_disk()
    return PrologMachine(kb, trace_retrievals=8)


class TestTracing:
    def test_trace_collects_retrievals(self):
        machine = traced_machine()
        list(machine.solve_text("item(i5, C)"))
        assert machine.trace is not None
        assert len(machine.trace) == 1
        goal, stats = machine.trace[0]
        assert stats.clauses_total == 100

    def test_trace_ring_buffer(self):
        machine = traced_machine()
        for n in range(12):
            machine.succeeds(f"item(i{n}, _)")
        assert len(machine.trace) == 8  # maxlen honoured

    def test_trace_off_by_default(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a).")
        machine = PrologMachine(kb)
        machine.succeeds("p(a)")
        assert machine.trace is None


class TestReportFormatting:
    def test_report_contents(self):
        machine = traced_machine()
        list(machine.solve_text("lookup(X)"))
        report = format_query_report(machine, title="demo")
        assert "demo" in report
        assert "retrievals" in report
        assert "clauses scanned" in report
        assert "search modes:" in report
        assert "last" in report and "retrievals:" in report

    def test_retrieval_line(self):
        machine = traced_machine()
        machine.succeeds("item(i1, _)")
        goal, stats = machine.trace[0]
        line = format_retrieval(goal, stats)
        assert "item(i1," in line
        assert "mode=" in line
        assert "scanned=100" in line

    def test_selectivity_percentage(self):
        machine = traced_machine()
        machine.succeeds("item(i1, _)")
        report = format_query_report(machine)
        assert "filter selectivity" in report

    def test_empty_machine_report(self):
        kb = KnowledgeBase()
        machine = PrologMachine(kb)
        report = format_query_report(machine)
        assert "retrievals        : 0" in report


class TestMetricsFormatting:
    def instrumented_machine(self):
        obs = Instrumentation()
        kb = KnowledgeBase(obs=obs)
        kb.consult_text("p(a). p(b).")
        return PrologMachine(kb, obs=obs), obs

    def test_headline_counters_present_when_zero(self):
        head = headline_counters(MetricsRegistry())
        assert head["retrievals"] == 0
        assert head["lock_waits"] == 0
        assert set(head) >= {"cache_hits", "fs2_search_calls", "txn_commits"}

    def test_format_metrics_sections(self):
        machine, obs = self.instrumented_machine()
        machine.succeeds("p(a)")
        text = format_metrics(obs, title="demo metrics")
        assert text.startswith("demo metrics\n============")
        assert "retrievals=1" in text
        assert "stage sim time (s):" in text
        assert "  software " in text
        assert "registry:" in text
        assert "crs.retrievals{mode=software}" in text

    def test_format_metrics_accepts_bare_registry(self):
        registry = MetricsRegistry()
        registry.counter("locks.waits", mode="X").inc(3)
        text = format_metrics(registry)
        assert "lock waits=3" in text

    def test_query_report_appends_metrics_when_enabled(self):
        machine, obs = self.instrumented_machine()
        machine.succeeds("p(a)")
        report = format_query_report(machine)
        assert "pipeline metrics" in report

    def test_query_report_silent_when_disabled(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a).")
        machine = PrologMachine(kb)
        machine.succeeds("p(a)")
        assert "pipeline metrics" not in format_query_report(machine)
