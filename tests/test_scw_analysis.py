"""Tests for the analytic superimposed-coding model, incl. agreement with
Monte-Carlo measurement on the real codeword generator."""

import math
import random

import pytest

from repro.scw import (
    CodewordScheme,
    expected_saturation,
    false_drop_probability,
    optimal_bits_per_key,
    recommend_width,
)
from repro.terms import Atom, Struct


class TestSaturation:
    def test_empty_record(self):
        assert expected_saturation(64, 2, 0) == 0.0

    def test_monotone_in_keys(self):
        values = [expected_saturation(64, 2, r) for r in range(0, 30, 5)]
        assert values == sorted(values)
        assert values[-1] < 1.0

    def test_limit_behaviour(self):
        assert expected_saturation(64, 2, 10_000) == pytest.approx(1.0)

    def test_known_value(self):
        # One key, one bit: exactly 1/width of the word is set on average.
        assert expected_saturation(64, 1, 1) == pytest.approx(1 / 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_saturation(0, 2, 3)
        with pytest.raises(ValueError):
            expected_saturation(64, 2, -1)


class TestFalseDropProbability:
    def test_wider_is_better(self):
        narrow = false_drop_probability(32, 2, 10, 3)
        wide = false_drop_probability(128, 2, 10, 3)
        assert wide < narrow

    def test_more_query_keys_is_better(self):
        weak = false_drop_probability(64, 2, 10, 1)
        strong = false_drop_probability(64, 2, 10, 4)
        assert strong < weak

    def test_probability_range(self):
        for width in (16, 64, 256):
            p = false_drop_probability(width, 2, 12, 3)
            assert 0.0 <= p <= 1.0

    def test_zero_query_keys_always_drops(self):
        # No constraints: everything matches (the shared-variable case).
        assert false_drop_probability(64, 2, 10, 0) == 1.0


class TestOptimalParameters:
    def test_half_saturation_rule(self):
        k = optimal_bits_per_key(128, 10)
        assert k == round(128 * math.log(2) / 10)
        saturation = expected_saturation(128, k, 10)
        assert 0.35 < saturation < 0.65

    def test_minimum_one(self):
        assert optimal_bits_per_key(8, 1000) == 1

    def test_recommend_width(self):
        width, k = recommend_width(
            record_keys=10, query_keys=3, target_false_drop=0.01
        )
        assert false_drop_probability(width, k, 10, 3) <= 0.01
        # And the next smaller power of two must miss the target.
        if width > 8:
            k_small = optimal_bits_per_key(width // 2, 10)
            assert (
                false_drop_probability(width // 2, k_small, 10, 3) > 0.01
            )

    def test_recommend_width_fixed_k(self):
        width, k = recommend_width(
            record_keys=10, query_keys=3, target_false_drop=0.05, bits_per_key=2
        )
        assert k == 2
        assert false_drop_probability(width, 2, 10, 3) <= 0.05

    def test_recommend_validation(self):
        with pytest.raises(ValueError):
            recommend_width(10, 3, 1.5)
        with pytest.raises(ValueError):
            recommend_width(0, 3, 0.01)


class TestAnalyticVsMeasured:
    def test_prediction_matches_monte_carlo(self):
        """The formula must predict the real generator's false-drop rate.

        Records with 6 distinct random atoms per head; ground queries with
        2 atoms that match nothing.  Measured drop rate should land within
        a small factor of the prediction (hash independence is approximate).
        """
        rng = random.Random(99)
        width, k = 48, 2
        scheme = CodewordScheme(width=width, bits_per_key=k, max_args=12)
        record_keys = 7  # 6 argument atoms + nothing else per head
        trials = 400
        drops = 0
        query = Struct("p", (Atom("qq_zzz_1"), Atom("qq_zzz_2")))
        query_cw = scheme.query_codeword(query)
        query_keys = 2
        for trial in range(trials):
            head = Struct(
                "p",
                tuple(
                    Atom(f"r{trial}_{i}_{rng.randrange(10**6)}") for i in range(6)
                ),
            )
            # Different arity so a real system would never compare them;
            # here we only exercise the codeword mathematics.
            clause_cw = scheme.clause_codeword(head)
            if scheme.matches(
                type(query_cw)(
                    bits=query_cw.bits,
                    mask=query_cw.mask,
                    arg_bits=query_cw.arg_bits,
                ),
                clause_cw,
            ):
                drops += 1
        measured = drops / trials
        predicted = false_drop_probability(width, k, record_keys, query_keys)
        # Same order of magnitude (generous band for 400 trials).
        assert predicted / 6 <= measured + 0.01
        assert measured <= predicted * 6 + 0.01
