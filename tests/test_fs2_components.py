"""Unit tests for the FS2 building blocks: control register, double
buffer, result memory, microcode, WCS, and item cursors."""

import pytest

from repro.fs2 import (
    CLARE_BASE_ADDRESS,
    CLARE_END_ADDRESS,
    Condition,
    ControlRegister,
    DispatchClass,
    DoubleBuffer,
    ElementCounters,
    ExecOp,
    FilterSelect,
    ItemCursor,
    MAX_SATISFIERS,
    MicroInstruction,
    MicroProgramController,
    OperationalMode,
    ResultMemory,
    ResultMemoryFull,
    SLOT_BYTES,
    SeqOp,
    WCS_WORDS,
    WritableControlStore,
    assemble_search_program,
    inline_children,
)
from repro.fs2.buffer import BufferBankBusy
from repro.fs2.control import in_clare_window
from repro.pif import PIFEncoder, SymbolTable
from repro.terms import read_term


class TestControlRegister:
    def test_initial_state(self):
        reg = ControlRegister()
        assert reg.filter_select == FilterSelect.FS1  # b2 == 0
        assert reg.mode == OperationalMode.READ_RESULT
        assert not reg.match_found

    def test_filter_select_bit2(self):
        reg = ControlRegister()
        reg.select_filter(FilterSelect.FS2)
        assert reg.value & 0x04
        reg.select_filter(FilterSelect.FS1)
        assert not (reg.value & 0x04)

    @pytest.mark.parametrize(
        "mode,b0,b1",
        [
            (OperationalMode.READ_RESULT, 0, 0),
            (OperationalMode.SEARCH, 0, 1),
            (OperationalMode.MICROPROGRAMMING, 1, 0),
            (OperationalMode.SET_QUERY, 1, 1),
        ],
    )
    def test_mode_encoding(self, mode, b0, b1):
        reg = ControlRegister()
        reg.set_mode(mode)
        assert (reg.value & 1) == b0
        assert ((reg.value >> 1) & 1) == b1
        assert reg.mode == mode

    def test_match_found_bit7(self):
        reg = ControlRegister()
        reg.set_match_found(True)
        assert reg.value & 0x80
        assert reg.match_found
        # A host write must not clobber the status bit.
        reg.write(0x07)
        assert reg.match_found

    def test_write_validates(self):
        reg = ControlRegister()
        with pytest.raises(ValueError):
            reg.write(0x1FF)

    def test_address_window(self):
        assert CLARE_BASE_ADDRESS == 0xFFFF7E00
        assert CLARE_END_ADDRESS == 0xFFFF7FFF
        assert in_clare_window(0xFFFF7E00)
        assert in_clare_window(0xFFFF7F80)
        assert not in_clare_window(0xFFFF7DFF)
        assert not in_clare_window(0xFFFF8000)


class TestDoubleBuffer:
    def test_roles_alternate(self):
        buffer = DoubleBuffer()
        assert buffer.input_bank == 0
        buffer.toggle()
        assert buffer.input_bank == 1
        assert buffer.output_bank == 0

    def test_load_then_consume(self):
        buffer = DoubleBuffer()
        buffer.load(b"clause-one")
        buffer.toggle()
        assert buffer.output() == b"clause-one"
        # Next clause streams in while the first is matched.
        buffer.load(b"clause-two")
        assert buffer.consume_output() == b"clause-one"
        buffer.toggle()
        assert buffer.consume_output() == b"clause-two"

    def test_overrun_detected(self):
        buffer = DoubleBuffer()
        buffer.load(b"a")
        with pytest.raises(BufferBankBusy):
            buffer.load(b"b")

    def test_empty_output(self):
        buffer = DoubleBuffer()
        with pytest.raises(BufferBankBusy):
            buffer.consume_output()

    def test_record_size_cap(self):
        buffer = DoubleBuffer(bank_bytes=8)
        with pytest.raises(ValueError):
            buffer.load(b"123456789")


class TestResultMemory:
    def test_capture_counts(self):
        rm = ResultMemory()
        rm.stream_record(b"abc")
        rm.capture()
        rm.stream_record(b"xyz")
        rm.discard()
        rm.stream_record(b"def")
        rm.capture()
        assert rm.satisfier_count == 2
        assert rm.read_results() == [b"abc", b"def"]

    def test_discarded_slot_reused(self):
        rm = ResultMemory()
        rm.stream_record(b"miss")
        rm.discard()
        rm.stream_record(b"hit!")
        rm.capture()
        assert rm.read_results() == [b"hit!"]

    def test_slot_limit(self):
        rm = ResultMemory()
        rm.stream_record(b"x" * SLOT_BYTES)  # exactly one slot: fine
        rm.capture()
        rm.begin_clause()
        with pytest.raises(ValueError):
            for _ in range(SLOT_BYTES + 1):
                rm.stream_byte(0)

    def test_satisfier_limit(self):
        rm = ResultMemory()
        for _ in range(MAX_SATISFIERS):
            rm.stream_record(b"r")
            rm.capture()
        with pytest.raises(ResultMemoryFull):
            rm.stream_record(b"r")

    def test_reset(self):
        rm = ResultMemory()
        rm.stream_record(b"a")
        rm.capture()
        rm.reset()
        assert rm.satisfier_count == 0
        assert rm.read_results() == []


class TestMicrocode:
    def test_instruction_roundtrip(self):
        instruction = MicroInstruction(
            seq=SeqOp.CJP,
            address=0x2A,
            condition=Condition.HIT,
            polarity=False,
            exec_op=ExecOp.MATCH,
        )
        assert MicroInstruction.decode(instruction.encode()) == instruction

    def test_word_fits_64_bits(self):
        instruction = MicroInstruction(
            seq=SeqOp.JMAP,
            address=0xFFF,
            condition=Condition.COUNTERS_DONE,
            exec_op=ExecOp.SIGNAL_MISS,
        )
        assert instruction.encode() < (1 << 64)

    def test_program_assembles(self):
        program = assemble_search_program()
        assert 0 < len(program) <= WCS_WORDS
        assert "POLL" in program.labels
        assert program.labels["POLL"] == 0

    def test_map_rom_complete(self):
        program = assemble_search_program()
        for db_class in DispatchClass:
            for q_class in DispatchClass:
                assert (db_class, q_class) in program.map_rom

    def test_disassembler(self):
        from repro.fs2.microcode import disassemble

        program = assemble_search_program()
        listing = disassemble(program)
        assert len(listing) == len(program)
        text = "\n".join(listing)
        assert "POLL" in text
        assert "EXEC MATCH" in text
        assert "CJP !BUFFER_READY -> POLL" in text
        assert "JMAP" in text

    def test_map_rom_priorities(self):
        program = assemble_search_program()
        anon = program.labels["M_ANON"]
        # Anonymous wins over everything (Figure 1: skip).
        assert program.map_rom[(DispatchClass.ANONYMOUS, DispatchClass.CONCRETE)] == anon
        assert (
            program.map_rom[(DispatchClass.CONCRETE, DispatchClass.ANONYMOUS)] == anon
        )
        # Database variables take precedence over query variables (case 5
        # before case 6).
        assert (
            program.map_rom[
                (DispatchClass.FIRST_DB_VAR, DispatchClass.FIRST_QUERY_VAR)
            ]
            == program.labels["M_DBV_FIRST"]
        )


class TestWCS:
    def test_load_and_fetch(self):
        wcs = WritableControlStore()
        program = assemble_search_program()
        wcs.load_program(program)
        assert wcs.loaded
        first = wcs.fetch(0)
        assert first.seq == SeqOp.CJP
        assert first.condition == Condition.BUFFER_READY

    def test_fetch_bounds(self):
        wcs = WritableControlStore()
        with pytest.raises(ValueError):
            wcs.fetch(WCS_WORDS)

    def test_map_rom_lookup(self):
        wcs = WritableControlStore()
        wcs.load_program(assemble_search_program())
        address = wcs.map_address(DispatchClass.CONCRETE, DispatchClass.CONCRETE)
        assert wcs.fetch(address).exec_op == ExecOp.MATCH


class TestSequencer:
    def test_cont(self):
        mpc = MicroProgramController()
        mpc.pc = 5
        instruction = MicroInstruction(seq=SeqOp.CONT)
        assert mpc.next_address(instruction, {}, None) == 6

    def test_jmp(self):
        mpc = MicroProgramController()
        instruction = MicroInstruction(seq=SeqOp.JMP, address=42)
        assert mpc.next_address(instruction, {}, None) == 42

    def test_cjp_taken_and_not(self):
        mpc = MicroProgramController()
        mpc.pc = 7
        instruction = MicroInstruction(
            seq=SeqOp.CJP, address=3, condition=Condition.HIT, polarity=True
        )
        assert mpc.next_address(instruction, {Condition.HIT: True}, None) == 3
        assert mpc.next_address(instruction, {Condition.HIT: False}, None) == 8

    def test_cjp_negative_polarity(self):
        mpc = MicroProgramController()
        mpc.pc = 7
        instruction = MicroInstruction(
            seq=SeqOp.CJP, address=3, condition=Condition.HIT, polarity=False
        )
        assert mpc.next_address(instruction, {Condition.HIT: False}, None) == 3

    def test_jmap(self):
        mpc = MicroProgramController()
        instruction = MicroInstruction(seq=SeqOp.JMAP)
        assert mpc.next_address(instruction, {}, 99) == 99
        with pytest.raises(ValueError):
            mpc.next_address(instruction, {}, None)


class TestElementCounters:
    def test_lifecycle(self):
        counters = ElementCounters()
        assert not counters.active
        counters.load(2, 3)
        assert counters.active
        assert not counters.either_zero()
        counters.decrement()
        counters.decrement()
        assert counters.either_zero()  # db side hit zero
        assert counters.query == 1
        counters.clear()
        assert not counters.active


class TestItemCursor:
    def encode(self, text):
        symbols = SymbolTable()
        encoder = PIFEncoder(symbols, side="db")
        return ItemCursor(encoder.encode_head(read_term(text)), symbols), symbols

    def test_take_and_peek(self):
        cursor, _ = self.encode("p(a, 1)")
        first = cursor.peek()
        assert cursor.take() == first
        cursor.take()
        assert cursor.at_end()

    def test_skip_flat_term(self):
        cursor, _ = self.encode("p(a, b)")
        assert cursor.skip_term() == 1
        assert not cursor.at_end()

    def test_skip_nested_term(self):
        cursor, _ = self.encode("p(f(g(1), [a, b]), tail)")
        consumed = cursor.skip_term()
        assert consumed > 4
        assert cursor.take_term() == read_term("tail")

    def test_take_term_materialises(self):
        cursor, _ = self.encode("p(f(X, [1 | T]), end)")
        assert cursor.take_term() == read_term("f(X, [1 | T])")

    def test_inline_children_counts(self):
        cursor, _ = self.encode("p(f(a, b), [1, 2], [x | T], [])")
        struct_item = cursor.take()
        assert inline_children(struct_item) == 2
        cursor.take()  # a
        cursor.take()  # b
        tlist_item = cursor.take()
        assert inline_children(tlist_item) == 3  # 2 elements + tail
        cursor.skip_term  # noqa: B018 -- documented: elements remain
        for _ in range(3):
            cursor.take()
        ulist_item = cursor.take()
        assert inline_children(ulist_item) == 2  # 1 element + tail var
        for _ in range(2):
            cursor.take()
        nil_item = cursor.take()
        assert inline_children(nil_item) == 0

    def test_var_names(self):
        cursor, _ = self.encode("p(Xyz, Xyz)")
        item = cursor.take()
        assert cursor.var_name(item.content) == "Xyz"
