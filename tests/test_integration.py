"""End-to-end integration tests: the full PDBM stack.

Knowledge base -> PIF compilation -> disk placement -> CRS mode selection
-> FS1/FS2 filtering -> full unification -> resolution, all in one flow.
"""

import pytest

from repro.crs import ClauseRetrievalServer, SearchMode
from repro.engine import PrologMachine
from repro.storage import KnowledgeBase, Residency
from repro.terms import read_term, term_to_string
from repro.unify import unifiable
from repro.workloads import FactKBSpec, generate_couples, generate_facts

FAMILY = """
parent(tom, bob).   parent(tom, liz).
parent(bob, ann).   parent(bob, pat).
parent(pat, jim).   parent(liz, joe).
male(tom). male(bob). male(jim). male(joe).
female(liz). female(ann). female(pat).
father(X, Y) :- parent(X, Y), male(X).
mother(X, Y) :- parent(X, Y), female(X).
anc(X, Y) :- parent(X, Y).
anc(X, Z) :- parent(X, Y), anc(Y, Z).
"""


def family_machine(mode=None, disk=False) -> PrologMachine:
    kb = KnowledgeBase()
    kb.consult_text(FAMILY)
    if disk:
        kb.module("user").pin(Residency.DISK)
        kb.sync_to_disk()
    return PrologMachine(kb, mode=mode)


class TestFamilyAcrossModes:
    @pytest.mark.parametrize("mode", [None, *SearchMode])
    def test_same_answers_every_mode(self, mode):
        machine = family_machine(mode=mode, disk=True)
        ancestors = sorted(
            term_to_string(s["X"]) for s in machine.solve_text("anc(X, jim)")
        )
        assert ancestors == ["bob", "pat", "tom"]

    @pytest.mark.parametrize("mode", list(SearchMode))
    def test_rules_work_on_disk(self, mode):
        machine = family_machine(mode=mode, disk=True)
        fathers = {
            (term_to_string(s["F"]), term_to_string(s["C"]))
            for s in machine.solve_text("father(F, C)")
        }
        assert ("tom", "bob") in fathers
        assert ("bob", "ann") in fathers
        assert all(f != "liz" for f, _ in fathers)

    def test_planner_driven_end_to_end(self):
        machine = family_machine(disk=True)
        assert machine.succeeds("mother(liz, joe)")
        assert not machine.succeeds("mother(tom, bob)")
        assert machine.stats.retrievals > 0


class TestLargeDiskResidentKB:
    @pytest.fixture(scope="class")
    def big_machine(self):
        kb = KnowledgeBase()
        clauses = generate_facts(
            FactKBSpec(functor="item", arity=3, count=2000, seed=13)
        )
        kb.consult_clauses(clauses, module="data")
        kb.module("data").pin(Residency.DISK)
        kb.sync_to_disk()
        self_query = clauses[17].head
        machine = PrologMachine(kb)
        return machine, self_query

    def test_exact_lookup(self, big_machine):
        machine, query = big_machine
        assert machine.succeeds(term_to_string(query))

    def test_filter_reduces_scan(self, big_machine):
        machine, query = big_machine
        machine.stats.candidates = 0
        list(machine.solve(query))
        # Candidates reaching full unification must be far fewer than the
        # 2000 clauses scanned by the filters.
        assert machine.stats.candidates < 100

    def test_planner_avoided_software(self, big_machine):
        machine, query = big_machine
        list(machine.solve(query))
        assert SearchMode.SOFTWARE not in machine.stats.mode_uses


class TestMarriedCoupleEndToEnd:
    """The paper's shared-variable scenario, full stack."""

    @pytest.fixture(scope="class")
    def setup(self):
        kb = KnowledgeBase()
        couples = generate_couples(count=400, same_surname_fraction=0.08, seed=5)
        kb.consult_clauses(couples, module="data")
        kb.module("data").pin(Residency.DISK)
        kb.sync_to_disk()
        expected = sum(
            1 for c in couples if c.head.args[0] == c.head.args[1]
        )
        return kb, expected

    def test_answer_count_matches(self, setup):
        kb, expected = setup
        machine = PrologMachine(kb)
        count = machine.count_solutions("married_couple(S, S)")
        assert count == expected

    def test_fs1_retrieves_everything_fs2_filters(self, setup):
        kb, expected = setup
        crs = ClauseRetrievalServer(kb)
        query = read_term("married_couple(S, S)")
        fs1 = crs.retrieve(query, mode=SearchMode.FS1_ONLY)
        both = crs.retrieve(query, mode=SearchMode.BOTH)
        assert len(fs1) == 400  # SCW is blind to shared variables
        assert len(both) == expected  # FS2 removes every false drop here

    def test_planner_picks_fs2_for_shared_vars(self, setup):
        kb, _ = setup
        machine = PrologMachine(kb)
        list(machine.solve_text("married_couple(S, S)"))
        assert SearchMode.FS2_ONLY in machine.stats.mode_uses


class TestFilterSoundnessEndToEnd:
    def test_no_answers_lost_vs_naive_scan(self):
        kb = KnowledgeBase()
        kb.consult_text(
            """
            p(a, f(1), [x]).   p(b, f(2), [y, z]).
            p(X, f(X), []).    p(a, Y, [Y]).
            p(c, g(1), [x]).   p(A, B, C) :- q(A, B, C).
            """,
            module="data",
        )
        kb.module("data").pin(Residency.DISK)
        kb.sync_to_disk()
        crs = ClauseRetrievalServer(kb)
        for query_text in [
            "p(a, f(1), [x])",
            "p(X, f(X), Z)",
            "p(a, W, [W])",
            "p(U, V, [])",
        ]:
            query = read_term(query_text)
            naive = {
                str(c)
                for c in kb.clauses(("p", 3))
                if unifiable(query, _fresh(c.head))
            }
            for mode in SearchMode:
                got = {str(c) for c, _ in crs.solutions(query, mode=mode)}
                assert got == naive, f"{mode} diverged on {query_text}"


def _fresh(term):
    from repro.terms import rename_apart

    return rename_apart(term)
