"""The ``solve`` verb on the wire: framing, streaming, deadlines, drain.

The distinguishing property of ``REQ_SOLVE`` is *incremental* delivery:
every answer crosses the socket as its own self-contained frame the
moment resolution finds it.  The infinite-stream tests below only
terminate because of that — a response that buffered the full solution
set first would never come back.
"""

import threading
import time

import pytest

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.crs import SearchMode
from repro.engine import PrologError, ResourceError
from repro.net import (
    BackgroundService,
    DeadlineExceeded,
    ErrorCode,
    FrameType,
    RetrievalClient,
    RetrievalService,
)
from repro.net import protocol
from repro.terms import read_term, term_to_string

GRAPH = """
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
"""

#: Infinitely many answers: nat(z), nat(s(z)), nat(s(s(z))), ...
NATS = """
nat(z).
nat(s(X)) :- nat(X).
"""


def make_service(text: str, **kwargs) -> RetrievalService:
    cluster = ShardedRetrievalServer(2, policy=ShardingPolicy.PREDICATE)
    cluster.consult_text(text)
    kwargs.setdefault("max_in_flight", 2)
    kwargs.setdefault("queue_limit", 4)
    return RetrievalService(cluster, **kwargs)


class TestProtocolRoundTrip:
    def test_solve_request_codec(self):
        goal = read_term("path(a, X)")
        payload = protocol.encode_solve_request(
            goal, engine="interp", mode=SearchMode.BOTH,
            deadline_ms=1500, max_solutions=7,
        )
        decoded, engine, mode, deadline_ms, max_solutions = (
            protocol.decode_solve_request(payload)
        )
        assert term_to_string(decoded) == term_to_string(goal)
        assert engine == "interp"
        assert mode is SearchMode.BOTH
        assert deadline_ms == 1500
        assert max_solutions == 7

    def test_solution_frame_codec(self):
        bindings = {
            "X": read_term("f(a, [1, 2 | T])"),
            "Rest": read_term("Zs"),
        }
        index, decoded = protocol.decode_solution(
            protocol.encode_solution(3, bindings)
        )
        assert index == 3
        assert set(decoded) == {"X", "Rest"}
        assert term_to_string(decoded["X"]) == term_to_string(bindings["X"])

    def test_done_frame_codec(self):
        count, completed, reason = protocol.decode_solve_done(
            protocol.encode_solve_done(41, False, "solution cap reached")
        )
        assert (count, completed, reason) == (41, False, "solution cap reached")

    def test_unknown_engine_rejected_at_encode_and_decode(self):
        with pytest.raises(ValueError):
            protocol.encode_solve_request(read_term("p(X)"), engine="warp")
        payload = bytearray(protocol.encode_solve_request(read_term("p(X)")))
        payload[4] = 0x7F  # engine selector byte, just past the table length
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_solve_request(bytes(payload))

    def test_resolution_errors_map_to_dedicated_codes(self):
        code, _ = protocol.exception_to_error(ResourceError("depth"))
        assert code is ErrorCode.RESOURCE_EXHAUSTED
        code, _ = protocol.exception_to_error(PrologError("unbound goal"))
        assert code is ErrorCode.RESOLUTION_ERROR
        assert isinstance(
            protocol.error_to_exception(ErrorCode.RESOURCE_EXHAUSTED, "x"),
            ResourceError,
        )
        assert isinstance(
            protocol.error_to_exception(ErrorCode.RESOLUTION_ERROR, "x"),
            PrologError,
        )


class TestStreaming:
    def test_finite_stream_and_trailer(self):
        with BackgroundService(make_service(GRAPH)) as background:
            host, port = background.service.address
            with RetrievalClient(host, port) as client:
                got = [
                    term_to_string(s["X"])
                    for s in client.solve(read_term("path(a, X)"))
                ]
        assert got == ["b", "c", "d"]

    def test_infinite_stream_is_capped_server_side(self):
        # Proof of incrementality: nat/1 never exhausts, so this test
        # finishing at all means answers left the server one at a time.
        with BackgroundService(make_service(NATS)) as background:
            host, port = background.service.address
            with RetrievalClient(host, port) as client:
                got = [
                    term_to_string(s["N"])
                    for s in client.solve(
                        read_term("nat(N)"), max_solutions=4
                    )
                ]
        assert got == ["z", "s(z)", "s(s(z))", "s(s(s(z)))"]

    def test_abandoning_an_infinite_stream_does_not_wedge_drain(self):
        # The client walks away mid-stream with no cap; the server must
        # notice the dead socket, abort the search, and still drain.
        service = make_service(NATS)
        with BackgroundService(service) as background:
            host, port = background.service.address
            client = RetrievalClient(host, port)
            stream = client.solve(read_term("nat(N)"))
            for _ in range(3):
                next(stream)
            stream.close()
            client.close()
        # Leaving the context manager drains; getting here is the test.
        assert service._drained

    def test_solutions_arrive_before_the_search_finishes(self):
        # Consume exactly one frame, then check the trailer has not
        # been sent: the stream is paced by the socket, not buffered.
        service = make_service(NATS)
        with BackgroundService(service) as background:
            host, port = background.service.address
            client = RetrievalClient(host, port)
            stream = client.solve(read_term("nat(N)"), max_solutions=50)
            first = next(stream)
            assert term_to_string(first["N"]) == "z"
            remaining = sum(1 for _ in stream)
            assert remaining == 49
            client.close()


class TestDeadlinesAndDrain:
    def test_deadline_mid_stream_raises_after_partial_answers(self):
        service = make_service(NATS)
        with BackgroundService(service) as background:
            host, port = background.service.address
            with RetrievalClient(host, port) as client:
                got = []
                with pytest.raises(DeadlineExceeded):
                    for solution in client.solve(
                        read_term("nat(N)"), deadline_s=0.3
                    ):
                        got.append(term_to_string(solution["N"]))
                # The stream delivered real answers before the budget
                # ran out — the failure is partial, not all-or-nothing.
                assert got, "expected some answers before the deadline"

    def test_draining_server_rejects_new_solves_but_finishes_admitted(self):
        service = make_service(GRAPH)
        background = BackgroundService(service)
        host, port = background.start()
        client = RetrievalClient(host, port)
        results: list = []

        def consume():
            results.extend(
                term_to_string(s["X"])
                for s in client.solve(read_term("path(a, X)"))
            )

        worker = threading.Thread(target=consume)
        worker.start()
        worker.join(timeout=10)
        background.stop()
        client.close()
        assert results == ["b", "c", "d"]
        assert service._drained

    def test_default_deadline_applies_to_solve(self):
        service = make_service(NATS, default_deadline_s=0.2)
        with BackgroundService(service) as background:
            host, port = background.service.address
            with RetrievalClient(host, port) as client:
                with pytest.raises(DeadlineExceeded):
                    list(client.solve(read_term("nat(N)")))


class TestCliIntegration:
    def test_client_solve_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "graph.pl"
        source.write_text(GRAPH)
        service = make_service(GRAPH)
        with BackgroundService(service) as background:
            host, port = background.service.address
            code = main(
                [
                    "client", "--host", host, "--port", str(port),
                    "--solve", "path(a, X)",
                    "--solve", "path(z, X)",
                ]
            )
        captured = capsys.readouterr().out
        assert code == 0
        assert "X = b" in captured
        assert "X = c" in captured
        assert "false" in captured
