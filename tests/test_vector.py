"""The vector (word-array) FS1 engine against bigint and naive scans.

:class:`repro.scw.VectorSlicedIndex` is a pure representation change on
top of a representation change: the same columns the big-int engine
packs into arbitrary-precision integers, stored as little-endian
``uint64`` word arrays (numpy when importable, ``array('Q')`` when
not).  Everything observable — addresses, order, batch results, the
columns-touched accounting, the packed segment image — must be
element-wise identical across all three engines and both backends.

The ``backend`` fixture runs every property twice: once on the numpy
fast path and once with ``vector._np`` monkeypatched away, so the
fallback is proven by the same assertions (and the suite still passes
on an interpreter with no numpy at all — the numpy parameterisation
just skips).
"""

import types

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import Instrumentation
from repro.scw import (
    BitSlicedIndex,
    CodewordScheme,
    FirstStageFilter,
    SecondaryIndexFile,
    VectorSlicedIndex,
)
from repro.scw import vector as vector_module
from repro.terms import read_term
from tests.strategies import clause_heads

SCHEME = CodewordScheme(width=64, bits_per_key=2, max_args=12)

# Hypothesis redraws examples against the function-scoped backend
# fixture; that is exactly what we want here (same examples, both
# backends), so the health check is suppressed suite-wide.
BOTH_BACKENDS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(params=["numpy", "array"])
def backend(request, monkeypatch):
    """Run the test under each word-array backend that can load."""
    if request.param == "numpy":
        if vector_module._np is None:
            pytest.skip("numpy not importable")
    else:
        monkeypatch.setattr(vector_module, "_np", None)
    return request.param


def build_index(
    heads, scheme: CodewordScheme = SCHEME, indicator=("p", 3)
) -> SecondaryIndexFile:
    index = SecondaryIndexFile(scheme, indicator)
    for position, head in enumerate(heads):
        index.add(head, position * 32)
    return index


class TestScanEquivalence:
    @BOTH_BACKENDS
    @given(
        st.lists(clause_heads(arity=3), min_size=0, max_size=20),
        st.lists(clause_heads(arity=3), min_size=1, max_size=6),
    )
    def test_vector_equals_bigint_equals_naive(self, backend, heads, queries):
        index = build_index(heads)
        assert index.vector.backend == backend
        for query in queries:
            codeword = SCHEME.query_codeword(query)
            naive = index.scan(codeword)
            assert index.vector.scan(codeword) == naive
            assert index.bitsliced.scan(codeword) == naive

    @BOTH_BACKENDS
    @given(
        st.lists(clause_heads(arity=3), min_size=0, max_size=20),
        st.lists(clause_heads(arity=3), min_size=1, max_size=6),
    )
    def test_scan_info_accounting_matches_bigint(self, backend, heads, queries):
        """Same survivors AND the same columns-touched count."""
        index = build_index(heads)
        for query in queries:
            codeword = SCHEME.query_codeword(query)
            assert index.vector.scan_info(codeword) == (
                index.bitsliced.scan_info(codeword)
            )

    @BOTH_BACKENDS
    @given(
        st.lists(clause_heads(arity=3), min_size=0, max_size=16),
        st.lists(clause_heads(arity=3), min_size=1, max_size=8),
    )
    def test_batch_equals_bigint_batch(self, backend, heads, queries):
        index = build_index(heads)
        codewords = [SCHEME.query_codeword(q) for q in queries]
        assert index.vector.scan_batch(codewords) == (
            index.bitsliced.scan_batch(codewords)
        )

    @BOTH_BACKENDS
    @given(
        st.lists(clause_heads(arity=2), min_size=1, max_size=10),
        st.lists(clause_heads(arity=2), min_size=1, max_size=10),
        clause_heads(arity=2),
    )
    def test_incremental_add_stays_in_sync(
        self, backend, first, second, query
    ):
        """The lazily-built view must track subsequent index appends."""
        index = build_index(first, indicator=("p", 2))
        assert index.vector is index.vector  # built once
        for position, head in enumerate(second):
            index.add(head, (len(first) + position) * 32)
        codeword = SCHEME.query_codeword(query)
        assert index.vector.scan(codeword) == index.scan(codeword)

    @BOTH_BACKENDS
    @given(
        st.integers(min_value=8, max_value=128),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=14),
        st.lists(clause_heads(arity=3), min_size=0, max_size=12),
        clause_heads(arity=3),
    )
    def test_scheme_parameter_sweep(
        self, backend, width, bits_per_key, max_args, heads, query
    ):
        scheme = CodewordScheme(
            width=width, bits_per_key=bits_per_key, max_args=max_args
        )
        index = build_index(heads, scheme=scheme)
        codeword = scheme.query_codeword(query)
        assert index.vector.scan(codeword) == index.scan(codeword)

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.filter_too_much,
        ],
    )
    @given(
        st.lists(clause_heads(functor="wide", arity=14), min_size=0, max_size=8),
        clause_heads(functor="wide", arity=14),
    )
    def test_truncation_property(self, backend, heads, query):
        """Mask planes past ``max_args`` stay faithful on both engines."""
        index = build_index(heads, indicator=("wide", 14))
        codeword = SCHEME.query_codeword(query)
        assert index.vector.scan(codeword) == index.scan(codeword)
        assert index.vector.scan(codeword) == index.bitsliced.scan(codeword)


class TestStructuralEdges:
    HEADS = [
        "p(a, 1, x)",
        "p(b, 2, y)",
        "p(X, X, z)",
        "p(A, B, C)",
        "p([1, 2], [], f(g))",
    ]

    def edge_index(self):
        return build_index([read_term(t) for t in self.HEADS])

    @pytest.mark.parametrize(
        "query",
        [
            "p(X, Y, Z)",  # all-variable: every entry survives
            "p(_, _, _)",
            "p(X, X, Y)",  # shared variable: invisible to the codewords
            "p(a, 1, x)",
            "p(b, W, y)",
            "p([1, 2], E, F)",
        ],
    )
    def test_edge_queries(self, backend, query):
        index = self.edge_index()
        codeword = SCHEME.query_codeword(read_term(query))
        assert index.vector.scan(codeword) == index.scan(codeword)

    def test_all_variable_query_returns_everything_untouched(self, backend):
        index = self.edge_index()
        codeword = SCHEME.query_codeword(read_term("p(X, Y, Z)"))
        addresses, columns_touched = index.vector.scan_info(codeword)
        assert addresses == [e.address for e in index]
        assert columns_touched == 0

    def test_empty_index(self, backend):
        sliced = VectorSlicedIndex(SCHEME)
        assert len(sliced) == 0
        query = SCHEME.query_codeword(read_term("p(a, b, c)"))
        assert sliced.scan(query) == []
        # Accounting on the empty index matches the bigint engine too
        # (it breaks after the first constrained position).
        assert sliced.scan_info(query) == (
            BitSlicedIndex(SCHEME).scan_info(query)
        )

    def test_addresses_come_back_in_entry_order(self, backend):
        index = build_index([read_term("p(a, 1, x)") for _ in range(5)])
        codeword = SCHEME.query_codeword(read_term("p(a, 1, x)"))
        assert index.vector.scan(codeword) == [0, 32, 64, 96, 128]

    def test_iter_scan_is_lazy_and_complete(self, backend):
        index = build_index(
            [read_term("p(a, 1, x)") for _ in range(80)]
        ).vector
        codeword = SCHEME.query_codeword(read_term("p(a, Y, Z)"))
        lazy = index.iter_scan(codeword)
        assert isinstance(lazy, types.GeneratorType)
        assert next(lazy) == 0  # partial consumption is fine
        assert [0, *lazy] == index.scan(codeword)

    def test_word_boundary_populations(self, backend):
        """63/64/65 entries: the partial-word occupancy edge."""
        for count in (63, 64, 65, 128, 129):
            index = build_index(
                [read_term(f"p(a{i % 7}, {i}, x)") for i in range(count)]
            )
            for text in ("p(a1, Y, Z)", "p(X, Y, Z)", "p(a3, 3, x)"):
                codeword = SCHEME.query_codeword(read_term(text))
                assert index.vector.scan(codeword) == index.scan(codeword)


class TestPackedImages:
    def test_packed_round_trip(self, backend):
        index = build_index(
            [read_term(f"p(a{i}, {i}, x)") for i in range(9)]
        ).vector
        column_bytes, columns, planes = index.packed_columns()
        assert column_bytes % 8 == 0
        rebuilt = VectorSlicedIndex.from_packed(
            SCHEME, [i * 32 for i in range(9)], column_bytes, columns, planes
        )
        for text in ("p(a1, Y, Z)", "p(X, Y, Z)", "p(a2, 2, x)"):
            codeword = SCHEME.query_codeword(read_term(text))
            assert rebuilt.scan(codeword) == index.scan(codeword)

    def test_packed_image_matches_bigint_engine_bytes(self, backend):
        """One image, two engines: the segment layout is shared."""
        index = build_index(
            [read_term(f"p(a{i}, {i}, x)") for i in range(70)]
        )
        assert index.vector.packed_columns() == (
            index.bitsliced.packed_columns()
        )

    def test_legacy_unaligned_image_attaches(self, backend):
        """Pre-word-alignment segments (ceil(N/8)-byte columns) decode."""
        source = build_index(
            [read_term(f"p(a{i}, {i}, x)") for i in range(9)]
        )
        sliced = source.bitsliced
        # Pack the old way: 2 bytes per 9-entry column, no padding.
        nbytes = (len(source) + 7) // 8
        columns = b"".join(
            c.to_bytes(nbytes, "little") for c in sliced._columns
        )
        planes = b"".join(
            p.to_bytes(nbytes, "little") for p in sliced._planes
        )
        rebuilt = VectorSlicedIndex.from_packed(
            SCHEME, [i * 32 for i in range(9)], nbytes, columns, planes
        )
        for text in ("p(a1, Y, Z)", "p(X, Y, Z)", "p(a2, 2, x)"):
            codeword = SCHEME.query_codeword(read_term(text))
            assert rebuilt.scan(codeword) == source.scan(codeword)

    def test_attached_index_thaws_on_append(self, backend):
        index = build_index([read_term(f"p(a{i}, {i}, x)") for i in range(5)])
        column_bytes, columns, planes = index.vector.packed_columns()
        attached = VectorSlicedIndex.from_packed(
            SCHEME, [i * 32 for i in range(5)], column_bytes, columns, planes
        )
        head = read_term("p(fresh, 99, x)")
        attached.add(SCHEME.clause_codeword(head), 160)
        index.add(head, 160)
        codeword = SCHEME.query_codeword(read_term("p(fresh, Y, Z)"))
        assert attached.scan(codeword) == index.scan(codeword)
        assert 160 in attached.scan(codeword)


class TestFirstStageFilterVectorMode:
    def filters(self):
        obs_v = Instrumentation()
        obs_b = Instrumentation()
        return (
            FirstStageFilter(SCHEME, mode="vector", obs=obs_v),
            FirstStageFilter(SCHEME, mode="bitsliced", obs=obs_b),
            FirstStageFilter(SCHEME, mode="naive", obs=Instrumentation()),
            obs_v,
            obs_b,
        )

    def test_modes_agree_and_share_the_timing_model(self, backend):
        index = build_index([read_term(t) for t in TestStructuralEdges.HEADS])
        vector, bitsliced, naive, _, _ = self.filters()
        for text in ("p(a, 1, x)", "p(X, 2, Y)", "p(U, V, W)"):
            query = read_term(text)
            fast = vector.search(index, query)
            assert fast == bitsliced.search(index, query)
            assert fast == naive.search(index, query)

    def test_search_batch_equals_search(self, backend):
        index = build_index([read_term(t) for t in TestStructuralEdges.HEADS])
        vector, _, _, _, _ = self.filters()
        queries = [
            read_term(t)
            for t in ("p(a, 1, x)", "p(b, Q, R)", "p(S, T, z)", "p(a, 1, x)")
        ]
        batched = vector.search_batch(index, queries)
        assert batched == [vector.search(index, q) for q in queries]

    def test_vector_counters_mirror_bitsliced(self, backend):
        index = build_index([read_term(t) for t in TestStructuralEdges.HEADS])
        vector, bitsliced, _, obs_v, obs_b = self.filters()
        queries = [read_term(t) for t in ("p(a, 1, x)", "p(X, 2, Y)")]
        for query in queries:
            vector.search(index, query)
            bitsliced.search(index, query)
        vector.search_batch(index, queries)
        bitsliced.search_batch(index, queries)
        assert obs_v.registry.total("fs1.vector.scans") == (
            obs_b.registry.total("fs1.bitsliced.scans")
        )
        assert obs_v.registry.total("fs1.vector.columns_touched") == (
            obs_b.registry.total("fs1.bitsliced.columns_touched")
        )
        assert obs_v.registry.total("fs1.vector.scans") == 4

    def test_vector_mode_accepted_by_validation(self):
        FirstStageFilter(SCHEME, mode="vector")
        with pytest.raises(ValueError):
            FirstStageFilter(SCHEME, mode="vectorised")


class TestSegmentRoundTrip:
    def shared_store(self, tmp_path, heads):
        from repro.parallel.segments import attach_kb, write_segments
        from repro.storage import KnowledgeBase
        from repro.terms import Clause

        kb = KnowledgeBase(scheme=SCHEME)
        for head in heads:
            kb.add_clause(Clause(head, ()))
        write_segments(kb, tmp_path)
        return kb, attach_kb(tmp_path)

    def test_attached_vector_scans_match(self, backend, tmp_path):
        heads = [read_term(f"p(a{i % 5}, {i}, x)") for i in range(70)]
        kb, shared = self.shared_store(tmp_path, heads)
        store = shared.store(("p", 3))
        parent = kb.store(("p", 3))
        assert store.index.vector.backend == backend
        for text in ("p(a1, Y, Z)", "p(X, Y, Z)", "p(a2, 2, x)"):
            codeword = SCHEME.query_codeword(read_term(text))
            expected = parent.index.scan(codeword)
            assert store.index.vector.scan(codeword) == expected
            assert store.index.bitsliced.scan(codeword) == expected
        shared.close()

    def test_numpy_attach_is_zero_copy(self, tmp_path):
        np = pytest.importorskip("numpy")
        heads = [read_term(f"p(a{i % 5}, {i}, x)") for i in range(70)]
        _, shared = self.shared_store(tmp_path, heads)
        vec = shared.store(("p", 3)).index.vector
        # An attached index wraps the mmap directly: read-only, unowned.
        assert not vec._cols.flags.owndata
        assert not vec._cols.flags.writeable
        shared.close()
