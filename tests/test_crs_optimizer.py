"""Tests for the conjunction planner (goal reordering by selectivity)."""

from repro.crs import ConjunctionPlanner
from repro.engine import PrologMachine
from repro.storage import KnowledgeBase
from repro.terms import body_goals, read_term, term_to_string


def make_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    # A big unselective relation and a small selective one.
    kb.consult_text(" ".join(f"big(b{i}, c{i % 7})." for i in range(200)))
    kb.consult_text("small(b3, x). small(b9, y).")
    return kb


def goals_of(text: str):
    return body_goals(read_term(text))


class TestOrdering:
    def test_selective_goal_first(self):
        kb = make_kb()
        planner = ConjunctionPlanner(kb)
        goals = goals_of("big(B, C), small(B, X)")
        ordered = planner.order(goals)
        assert term_to_string(ordered[0]).startswith("small")

    def test_constants_beat_open_goals(self):
        kb = make_kb()
        planner = ConjunctionPlanner(kb)
        goals = goals_of("big(B, C), big(b5, C2)")
        ordered = planner.order(goals)
        assert term_to_string(ordered[0]) == "big(b5,C2)"

    def test_join_chains_through_shared_variables(self):
        kb = KnowledgeBase()
        kb.consult_text(" ".join(f"r(a{i}, m{i % 5})." for i in range(100)))
        kb.consult_text(" ".join(f"s(m{i % 5}, z{i})." for i in range(100)))
        kb.consult_text("t(a7, only).")
        planner = ConjunctionPlanner(kb)
        goals = goals_of("r(A, M), s(M, Z), t(A, W)")
        ordered = planner.order(goals)
        # t/2 is tiny: it goes first and binds A.
        assert term_to_string(ordered[0]).startswith("t(")

    def test_single_goal_untouched(self):
        kb = make_kb()
        planner = ConjunctionPlanner(kb)
        goals = goals_of("big(B, C)")
        assert planner.order(goals) == goals

    def test_builtins_disable_reordering(self):
        kb = make_kb()
        planner = ConjunctionPlanner(kb)
        goals = goals_of("big(B, C), B = b3, small(B, X)")
        assert planner.order(goals) == goals

    def test_unknown_predicates_disable_reordering(self):
        kb = make_kb()
        planner = ConjunctionPlanner(kb)
        goals = goals_of("big(B, C), mystery(B)")
        assert planner.order(goals) == goals

    def test_explain_reports_estimates(self):
        kb = make_kb()
        planner = ConjunctionPlanner(kb)
        goals = goals_of("big(B, C), small(B, X)")
        estimates = planner.explain(goals)
        assert len(estimates) == 2
        assert estimates[0].candidates <= estimates[1].candidates
        assert term_to_string(estimates[0].goal).startswith("small")


class TestSoundness:
    def test_reordered_solutions_identical(self):
        kb = make_kb()
        planner = ConjunctionPlanner(kb)
        machine = PrologMachine(kb)
        goals = goals_of("big(B, C), small(B, X)")
        original = {
            (term_to_string(s["B"]), term_to_string(s["X"]))
            for s in machine.solve_text("big(B, C), small(B, X)")
        }
        ordered = planner.order(goals)
        reordered_text = ", ".join(term_to_string(g) for g in ordered)
        reordered = {
            (term_to_string(s["B"]), term_to_string(s["X"]))
            for s in machine.solve_text(reordered_text)
        }
        assert original == reordered
        assert original  # non-empty

    def test_candidate_volume_actually_drops(self):
        kb = make_kb()
        planner = ConjunctionPlanner(kb)
        goals = goals_of("big(B, C), small(B, X)")
        ordered = planner.order(goals)

        def scanned(goal_tuple):
            machine = PrologMachine(kb)
            text = ", ".join(term_to_string(g) for g in goal_tuple)
            list(machine.solve_text(text))
            return machine.stats.clauses_scanned

        assert scanned(ordered) < scanned(goals)


class TestOptimizerProperty:
    def test_random_join_programs_preserve_solutions(self):
        """Reordering never changes the solution multiset."""
        import random

        from repro.terms import Atom, Clause, Struct, Var

        for seed in range(10):
            rng = random.Random(seed)
            kb = KnowledgeBase()
            sizes = {}
            for p in range(3):
                name = f"t{p}"
                count = rng.choice((3, 10, 40))
                sizes[name] = count
                for i in range(count):
                    kb.add_clause(
                        Clause(
                            Struct(
                                name,
                                (
                                    Atom(f"k{i % 6}"),
                                    Atom(f"v{rng.randrange(6)}"),
                                ),
                            )
                        )
                    )
            goals = tuple(
                Struct(f"t{p}", (Var("A"), Var(f"B{p}"))) for p in range(3)
            )
            planner = ConjunctionPlanner(kb)
            ordered = planner.order(goals)
            machine = PrologMachine(kb)
            original_text = ", ".join(term_to_string(g) for g in goals)
            ordered_text = ", ".join(term_to_string(g) for g in ordered)
            names = ["A", "B0", "B1", "B2"]
            original = sorted(
                tuple(term_to_string(s[n]) for n in names)
                for s in machine.solve_text(original_text)
            )
            reordered = sorted(
                tuple(term_to_string(s[n]) for n in names)
                for s in machine.solve_text(ordered_text)
            )
            assert original == reordered, f"seed {seed}"
