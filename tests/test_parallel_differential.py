"""Differential harness: process shard workers must equal the threads.

:class:`repro.parallel.ProcessShardedRetrievalServer` moves shard
execution into worker processes over shared mmap segments, but the
contract is *bit identity*: for any program, goal, mode, and mutation
history, both the candidate multiset AND the modelled 1989 statistics
(simulated disk/FS1/FS2 times, byte counts, per-shard splits) must be
exactly the threaded cluster's.  The suite drives both backends side by
side — element-wise over ``retrieve``, ``retrieve_batch``, full
``solve`` queries, and across forwarded mutations — and a hypothesis
property (slow tier) repeats the comparison over random knowledge
bases.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.crs import SearchMode
from repro.engine import SolveEngine
from repro.parallel import ProcessShardedRetrievalServer
from repro.storage import Residency
from repro.terms import Atom, Clause, Struct, Var, read_term
from tests.strategies import clause_heads

PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(a, d). edge(d, e).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
likes(mary, wine). likes(john, X) :- likes(X, wine).
wide(a, b, c, d, e, f, g, h, i, j, k, l, m, n).
"""

GOALS = [
    "edge(a, X)",
    "edge(X, Y)",
    "path(a, Z)",
    "likes(X, wine)",
    "wide(a, B, c, D, e, F, g, H, i, J, k, L, m, N)",
]

ALL_MODES = [None, *SearchMode]


def fingerprint(result):
    """Candidates element-wise (order preserved) plus the full stats row."""
    return (
        [str(c) for c in result.candidates],
        dataclasses.astuple(result.stats),
    )


def build_pair(clauses=None, text=PROGRAM, num_shards=3,
               policy=ShardingPolicy.PREDICATE):
    threaded = ShardedRetrievalServer(num_shards, policy)
    process = ProcessShardedRetrievalServer(num_shards, policy)
    if clauses is not None:
        threaded.consult_clauses(clauses)
        process.consult_clauses(clauses)
    else:
        threaded.consult_text(text)
        process.consult_text(text)
    process.start()
    return threaded, process


@pytest.fixture(scope="module")
def readonly_pair():
    threaded, process = build_pair()
    yield threaded, process
    process.close()


class TestRetrieveIdentity:
    def test_every_goal_and_mode_agrees(self, readonly_pair):
        threaded, process = readonly_pair
        for goal_text in GOALS:
            goal = read_term(goal_text)
            for mode in ALL_MODES:
                expected = fingerprint(threaded.retrieve(goal, mode=mode))
                got = fingerprint(process.retrieve(goal, mode=mode))
                assert got == expected, (goal_text, mode)

    def test_retrieve_batch_is_element_wise_identical(self, readonly_pair):
        threaded, process = readonly_pair
        goals = [read_term(text) for text in GOALS]
        expected = [fingerprint(r) for r in threaded.retrieve_batch(goals)]
        got = [fingerprint(r) for r in process.retrieve_batch(goals)]
        assert got == expected

    def test_worker_metrics_reach_the_parent_registry(self, readonly_pair):
        _, process = readonly_pair
        process.retrieve(read_term("edge(a, X)"))
        snapshots = process.pull_worker_metrics()
        assert set(snapshots) == {0, 1, 2}
        assert any(
            key.startswith("crs.retrievals")
            for snapshot in snapshots.values()
            for key in snapshot
        )
        merged = process.obs.registry.snapshot()
        assert any("worker=" in key for key in merged)


class TestMutationIdentity:
    def test_mutations_keep_both_paths_identical(self):
        threaded, process = build_pair()
        try:
            steps = [
                ("assertz", Clause(Struct("edge", (Atom("e"), Atom("f"))))),
                ("asserta", Clause(Struct("edge", (Atom("zz"), Atom("a"))))),
                ("retract", Clause(Struct("edge", (Atom("a"), Var("Q"))))),
                ("assertz", Clause(Struct("fresh", (Atom("n1"),)))),
            ]
            for op, clause in steps:
                if op == "assertz":
                    threaded.add_clause(clause)
                    process.add_clause(clause)
                elif op == "asserta":
                    threaded.asserta(clause)
                    process.asserta(clause)
                else:
                    removed_t = threaded.retract_matching(clause)
                    removed_p = process.retract_matching(clause)
                    assert str(removed_t) == str(removed_p)
                for goal_text in ("edge(X, Y)", "fresh(X)"):
                    goal = read_term(goal_text)
                    try:
                        expected = fingerprint(threaded.retrieve(goal))
                    except Exception as exc:
                        with pytest.raises(type(exc)):
                            process.retrieve(goal)
                        continue
                    assert fingerprint(process.retrieve(goal)) == expected
        finally:
            process.close()

    def test_pin_to_disk_is_mirrored(self):
        threaded, process = build_pair()
        try:
            threaded.pin_module("user", Residency.DISK)
            process.pin_module("user", Residency.DISK)
            goal = read_term("edge(a, X)")
            expected = fingerprint(threaded.retrieve(goal))
            got = fingerprint(process.retrieve(goal))
            assert got == expected
            assert got[1] == expected[1]  # disk_time_s rides in the stats
        finally:
            process.close()


class TestSolveIdentity:
    def test_solve_streams_identical_answers_and_stats(self):
        threaded, process = build_pair()
        try:
            for engine_kind in ("zip", "interp"):
                for query in ("path(a, Z)", "likes(X, wine)"):
                    goal = read_term(query)
                    eng_t = SolveEngine(threaded, engine=engine_kind)
                    eng_p = SolveEngine(process, engine=engine_kind)
                    answers_t = [
                        sorted((k, str(v)) for k, v in s.items())
                        for s in eng_t.solve(goal, max_solutions=20)
                    ]
                    answers_p = [
                        sorted((k, str(v)) for k, v in s.items())
                        for s in eng_p.solve(goal, max_solutions=20)
                    ]
                    assert answers_p == answers_t, (engine_kind, query)
                    assert dataclasses.astuple(eng_p.stats) == dataclasses.astuple(
                        eng_t.stats
                    )
        finally:
            process.close()


@pytest.mark.slow
class TestDifferentialProperty:
    @given(
        heads=st.lists(
            clause_heads(functor="p", arity=3), min_size=1, max_size=10
        ),
        goal=clause_heads(functor="p", arity=3),
        policy=st.sampled_from(list(ShardingPolicy)),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_kb_process_equals_threaded(self, heads, goal, policy):
        clauses = [Clause(head=h) for h in heads]
        threaded, process = build_pair(
            clauses=clauses, num_shards=2, policy=policy
        )
        try:
            for mode in SearchMode:
                expected = fingerprint(threaded.retrieve(goal, mode=mode))
                got = fingerprint(process.retrieve(goal, mode=mode))
                assert got == expected, (policy, mode)
            batch_expected = [
                fingerprint(r) for r in threaded.retrieve_batch([goal, goal])
            ]
            batch_got = [
                fingerprint(r) for r in process.retrieve_batch([goal, goal])
            ]
            assert batch_got == batch_expected
        finally:
            process.close()
