"""Direct unit tests for the Test Unification Engine datapath."""

import pytest

from repro.fs2.tue import SideTerm
from repro.fs2.tue import TestUnificationEngine as TUEngine
from repro.terms import read_term
from repro.unify import HardwareOp


@pytest.fixture
def tue():
    return TUEngine(cross_binding=True)


def st(text: str, side: str) -> SideTerm:
    return SideTerm(read_term(text), side)


class TestShallowCompare:
    def test_simple_values(self, tue):
        assert tue.shallow_compare(read_term("a"), read_term("a"))
        assert not tue.shallow_compare(read_term("a"), read_term("b"))
        assert tue.shallow_compare(read_term("3"), read_term("3"))
        assert not tue.shallow_compare(read_term("3"), read_term("3.0"))

    def test_structs_by_functor_and_arity_only(self, tue):
        assert tue.shallow_compare(read_term("f(a)"), read_term("f(b)"))
        assert not tue.shallow_compare(read_term("f(a)"), read_term("g(a)"))
        assert not tue.shallow_compare(read_term("f(a)"), read_term("f(a, b)"))

    def test_lists_counter_rule(self, tue):
        assert tue.shallow_compare(read_term("[1, 2]"), read_term("[3, 4]"))
        assert not tue.shallow_compare(read_term("[1]"), read_term("[1, 2]"))
        assert tue.shallow_compare(read_term("[1 | T]"), read_term("[1, 2, 3]"))
        assert tue.shallow_compare(read_term("[]"), read_term("[]"))
        assert not tue.shallow_compare(read_term("[]"), read_term("[1]"))

    def test_category_mismatch(self, tue):
        assert not tue.shallow_compare(read_term("f(a)"), read_term("[a]"))
        assert not tue.shallow_compare(read_term("a"), read_term("[a]"))


class TestVariableOps:
    def test_store_and_fetch_consistent(self, tue):
        tue.var_first("db", "A", st("hello", "query"))
        assert tue.var_subsequent("db", "A", st("hello", "query"))
        assert not tue.var_subsequent("db", "A", st("other", "query"))

    def test_db_memory_reset(self, tue):
        tue.var_first("db", "A", st("x", "query"))
        tue.reset_db_memory()
        assert tue.slot("db", "A") is None
        # After the reset a "subsequent" occurrence self-heals to a store.
        assert tue.var_subsequent("db", "A", st("y", "query"))
        assert tue.slot("db", "A") is not None

    def test_reciprocal_cross_binding(self, tue):
        tue.var_first("db", "A", st("X", "query"))
        assert tue.slot("query", "X") is not None
        assert tue.op_counts[HardwareOp.DB_STORE] == 1
        assert tue.op_counts[HardwareOp.QUERY_STORE] == 1

    def test_cross_bound_fetch_counts(self, tue):
        tue.var_first("db", "A", st("X", "query"))
        assert tue.var_subsequent("db", "A", st("b", "query"))
        assert tue.op_counts[HardwareOp.DB_CROSS_BOUND_FETCH] == 1
        # The ultimate association is now instantiated to b.
        assert tue.var_subsequent("query", "X", st("b", "db"))
        assert not tue.var_subsequent("query", "X", st("c", "db"))

    def test_cross_binding_disabled(self):
        tue = TUEngine(cross_binding=False)
        tue.var_first("db", "A", st("X", "query"))
        assert tue.var_subsequent("db", "A", st("b", "query"))
        assert tue.var_subsequent("db", "A", st("c", "query"))  # unchecked
        assert tue.op_counts[HardwareOp.DB_CROSS_BOUND_FETCH] == 0
        assert tue.op_counts[HardwareOp.DB_FETCH] == 2

    def test_op_time_accrual(self, tue):
        tue.record_op(HardwareOp.MATCH)
        tue.record_op(HardwareOp.QUERY_CROSS_BOUND_FETCH)
        assert tue.op_time_ns == 105 + 235
        tue.reset_accounting()
        assert tue.op_time_ns == 0
        assert not tue.op_counts


class TestDispatchTerms:
    def test_concrete_pair(self, tue):
        assert tue.dispatch_terms(st("a", "db"), st("a", "query"))
        assert not tue.dispatch_terms(st("a", "db"), st("b", "query"))

    def test_var_pair_stores(self, tue):
        assert tue.dispatch_terms(st("V", "db"), st("k", "query"))
        assert not tue.dispatch_terms(st("V", "db"), st("other", "query"))

    def test_anonymous_skips(self, tue):
        assert tue.dispatch_terms(st("_", "db"), st("anything", "query"))
        assert tue.dispatch_terms(st("anything", "db"), st("_", "query"))

    def test_folded_pair_not_counted_as_match(self, tue):
        tue.dispatch_terms(st("a", "db"), st("a", "query"), folded=True)
        assert tue.op_counts[HardwareOp.MATCH] == 0
        tue.dispatch_terms(st("a", "db"), st("a", "query"), folded=False)
        assert tue.op_counts[HardwareOp.MATCH] == 1
