"""Tests for the synthetic workload generators."""

import pytest

from repro.terms import Struct, Var, is_ground, variables
from repro.unify import unifiable
from repro.workloads import (
    FactKBSpec,
    WARREN_FULL,
    build_warren_kb,
    generate_couples,
    generate_facts,
    generate_mixed_predicate,
    ground_query_for,
    open_query,
    shared_variable_query,
    warren_kb_spec,
)


class TestFactGeneration:
    def test_count_and_shape(self):
        clauses = generate_facts(FactKBSpec(functor="r", arity=4, count=50))
        assert len(clauses) == 50
        for clause in clauses:
            assert clause.is_fact
            assert clause.indicator == ("r", 4)

    def test_deterministic(self):
        spec = FactKBSpec(count=20, seed=42)
        assert generate_facts(spec) == generate_facts(spec)
        assert generate_facts(spec) != generate_facts(
            FactKBSpec(count=20, seed=43)
        )

    def test_ground_by_default(self):
        clauses = generate_facts(FactKBSpec(count=30))
        assert all(c.is_ground_fact for c in clauses)

    def test_variable_fraction(self):
        clauses = generate_facts(
            FactKBSpec(count=200, variable_fraction=0.5, seed=1)
        )
        with_vars = sum(1 for c in clauses if not c.is_ground_fact)
        assert 40 < with_vars < 200

    def test_structure_fraction(self):
        clauses = generate_facts(
            FactKBSpec(count=200, structure_fraction=0.5, seed=1)
        )
        structured = sum(
            1
            for c in clauses
            if isinstance(c.head, Struct)
            and any(isinstance(a, Struct) for a in c.head.args)
        )
        assert structured > 40

    def test_domain_sizes_control_selectivity(self):
        tight = generate_facts(
            FactKBSpec(count=200, domain_sizes=(2, 2, 2), seed=5)
        )
        distinct = {str(c.head) for c in tight}
        assert len(distinct) <= 8  # tiny domains collapse the space


class TestMixedPredicate:
    def test_fact_rule_mix(self):
        clauses = generate_mixed_predicate(facts=30, rules=5, seed=2)
        assert sum(1 for c in clauses if c.is_fact) == 30
        assert sum(1 for c in clauses if not c.is_fact) == 5

    def test_rules_reference_helper(self):
        clauses = generate_mixed_predicate(facts=5, rules=3, helper_functor="h")
        for clause in clauses:
            if not clause.is_fact:
                assert clause.body[0].functor == "h"  # type: ignore[union-attr]


class TestCouples:
    def test_same_surname_fraction(self):
        clauses = generate_couples(count=1000, same_surname_fraction=0.2, seed=9)
        same = sum(
            1
            for c in clauses
            if isinstance(c.head, Struct) and c.head.args[0] == c.head.args[1]
        )
        assert 140 < same < 260

    def test_zero_fraction(self):
        clauses = generate_couples(count=100, same_surname_fraction=0.0, seed=1)
        assert all(
            c.head.args[0] != c.head.args[1]  # type: ignore[union-attr]
            for c in clauses
        )


class TestQueryGenerators:
    def test_ground_query_matches_something(self):
        clauses = generate_facts(FactKBSpec(count=50, seed=3))
        query = ground_query_for(clauses, seed=1)
        assert is_ground(query)
        assert any(unifiable(query, c.head) for c in clauses)

    def test_partially_bound_query(self):
        clauses = generate_facts(FactKBSpec(count=50, arity=4, seed=3))
        query = ground_query_for(clauses, seed=1, bound_arguments=2)
        assert isinstance(query, Struct)
        assert sum(1 for a in query.args if isinstance(a, Var)) == 2

    def test_shared_variable_query(self):
        query = shared_variable_query("married_couple")
        assert isinstance(query, Struct)
        assert query.args[0] == query.args[1]
        with pytest.raises(ValueError):
            shared_variable_query("p", arity=1)

    def test_open_query(self):
        query = open_query("p", 3)
        assert isinstance(query, Struct)
        assert len(variables(query)) == 3
        assert open_query("p", 0).is_callable()


class TestWarrenKB:
    def test_full_spec_ratios(self):
        assert WARREN_FULL.predicates == 3000
        assert WARREN_FULL.rules_per_predicate == 10
        assert WARREN_FULL.facts_per_predicate == 1000

    def test_scaling(self):
        spec = warren_kb_spec(0.01)
        assert spec.predicates == 30
        assert spec.facts == 30_000
        with pytest.raises(ValueError):
            warren_kb_spec(0)
        with pytest.raises(ValueError):
            warren_kb_spec(1.5)

    def test_build_small_instance(self):
        spec = warren_kb_spec(0.002)  # 6 predicates, 6000 facts
        kb = build_warren_kb(spec, seed=4)
        assert len(kb.predicates()) == spec.predicates
        assert kb.clause_count() >= spec.predicates * spec.facts_per_predicate
        # Mixed relations: at least one predicate holds facts and rules.
        mixed = 0
        for indicator in kb.predicates():
            kinds = {c.is_fact for c in kb.clauses(indicator)}
            if kinds == {True, False}:
                mixed += 1
        assert mixed >= 1

    def test_queries_run_against_warren_kb(self):
        from repro.engine import PrologMachine

        kb = build_warren_kb(warren_kb_spec(0.001), seed=4)
        machine = PrologMachine(kb, unknown_predicates="fail")
        indicator = kb.predicates()[1]
        goal = open_query(*indicator)
        solutions = 0
        for _ in machine.solve(goal):
            solutions += 1
            if solutions >= 5:
                break
        assert solutions > 0
