"""Subprocess body for the WAL crash-injection suite.

Run as::

    python wal_crash_runner.py STORE_DIR ACKS_FILE POINT HITS COUNT

Builds a durable two-shard engine over ``STORE_DIR``, arms crash point
``POINT`` to SIGKILL this process on its ``HITS``-th hit, then applies
``COUNT`` deterministic mutations.  After each mutator *returns* —
i.e. after ``wait_durable`` acknowledged the write per the flush policy
— the mutation's ``write_id`` is appended to ``ACKS_FILE`` with
``O_APPEND`` + ``fsync``, so the acks file is the ground truth of what
the "client" was promised.  The parent test recovers the store and
asserts the promise held: every acked write survived, in order, with no
duplicates.

If ``POINT`` starts with ``compact.`` the mutations all complete (and
ack) first, and the armed point fires inside the explicit
``engine.compact()`` call — crash-during-compaction must never lose an
acked write either.

The mutation schedule (see :func:`mutation_plan`) is pure: the parent
imports this module and replays the same plan against an in-memory
oracle to decide exactly what the recovered KB must contain.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)


def mutation_plan(count: int) -> list[tuple[str, str, str]]:
    """The deterministic mutation schedule: (op, clause_text, write_id).

    Mostly ``assertz`` of unique facts, an ``asserta`` every seventh
    mutation, and every fifth mutation retracts the fact asserted three
    steps earlier (which is always still present: retract indices are
    ``4 mod 5`` so the victims, at ``1 mod 5``, are never retracted
    twice).  Every mutation changes the KB, so each one bumps the engine
    version by exactly one — the parent leans on that to map the acked
    prefix onto a version number.
    """
    plan: list[tuple[str, str, str]] = []
    for i in range(count):
        write_id = f"crash:{i}"
        if i % 5 == 4:
            plan.append(("retract", f"crash_fact(k{i - 3})", write_id))
        elif i % 7 == 3:
            plan.append(("asserta", f"crash_fact(k{i})", write_id))
        else:
            plan.append(("assertz", f"crash_fact(k{i})", write_id))
    return plan


def main(argv: list[str]) -> int:
    store_dir, acks_file, point, hits, count = (
        argv[0], argv[1], argv[2], int(argv[3]), int(argv[4]),
    )
    from repro.cluster import ShardedRetrievalServer
    from repro.storage import DurabilityOptions
    from repro.storage.wal import install_crash_point
    from repro.terms import read_term

    engine = ShardedRetrievalServer(
        2,
        "predicate",
        durability=DurabilityOptions(
            directory=store_dir, auto_compact=False
        ),
    )
    install_crash_point(point, hits)
    acks = os.open(acks_file, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    for op, text, write_id in mutation_plan(count):
        term = read_term(text)
        if op == "assertz":
            engine.assertz(term, write_id=write_id)
        elif op == "asserta":
            engine.asserta(term, write_id=write_id)
        else:
            removed = engine.retract_matching(term, write_id=write_id)
            assert removed is not None, f"plan retract missed: {text}"
        # The mutator returned: the write is acknowledged.  Record the
        # promise durably before offering the next mutation.
        os.write(acks, (write_id + "\n").encode("ascii"))
        os.fsync(acks)
    if point.startswith("compact."):
        engine.compact()
    engine.close()
    # Reaching here means the armed point never fired — the parent
    # treats that as a harness bug, not a pass.
    print("SURVIVED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
