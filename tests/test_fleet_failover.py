"""Replica failover: per-address health, quarantine, and the busy-mask fix.

The headline regression here: the pooled client used to count
``SERVER_BUSY`` retries against a single retry budget with no notion of
*which* address rejected, so one overloaded replica could exhaust the
budget and mask its perfectly healthy siblings.  The
:class:`~repro.net.FailoverClient` keeps an :class:`~repro.net.AddressHealth`
per address and moves to the next replica immediately on a busy answer —
the first test pins exactly that behaviour over real sockets.
"""

import random

import pytest

from repro.cluster import ShardedRetrievalServer
from repro.net import (
    AddressHealth,
    BackgroundService,
    BackoffPolicy,
    FailoverClient,
    RetrievalService,
    ServerBusy,
)
from repro.net import protocol
from repro.net.protocol import ErrorCode, FrameType
from repro.obs import Instrumentation
from repro.terms import read_term
from tests.test_net_client_faults import ScriptedServer, read_request


def small_engine():
    engine = ShardedRetrievalServer(1)
    engine.consult_text("p(a). p(b). p(c).")
    return engine


def always_busy(conn):
    """Answer every request on the connection with SERVER_BUSY."""
    try:
        while True:
            _, request_id, _ = read_request(conn)
            conn.sendall(
                protocol.encode_frame(
                    FrameType.RESP_ERROR,
                    request_id,
                    protocol.encode_error(
                        ErrorCode.SERVER_BUSY, "scripted busy"
                    ),
                )
            )
    except (ConnectionError, OSError):
        return


def failover_client(addresses, **kwargs):
    sleeps = []
    kwargs.setdefault("rng", random.Random(0))
    kwargs.setdefault("sleep", sleeps.append)
    client = FailoverClient(addresses, **kwargs)
    return client, sleeps


class TestAddressHealth:
    def test_busy_never_escalates_failures(self):
        health = AddressHealth()
        for _ in range(10):
            health.note_busy(now=100.0, penalty_s=0.05)
        assert health.consecutive_failures == 0
        assert health.busy_rejections == 10
        assert health.quarantined_until == pytest.approx(100.05)

    def test_failures_quarantine_exponentially_with_cap(self):
        health = AddressHealth()
        health.note_failure(now=0.0, base_s=0.1, cap_s=2.0)
        assert health.quarantined_until == pytest.approx(0.1)
        for _ in range(10):
            health.note_failure(now=0.0, base_s=0.1, cap_s=2.0)
        assert health.quarantined_until == pytest.approx(2.0)  # capped

    def test_success_resets(self):
        health = AddressHealth()
        health.note_failure(now=0.0, base_s=0.1, cap_s=2.0)
        health.note_success()
        assert health.consecutive_failures == 0
        assert health.available(now=0.0)


class TestBusyReplicaDoesNotMaskHealthyOne:
    def test_busy_first_replica_fails_over_without_backoff(self):
        """Regression: one busy replica must cost one probe, not a retry
        budget — the healthy sibling answers on the same pass, with no
        backoff sleep and no error surfaced."""
        obs = Instrumentation(enabled=True)
        service = RetrievalService(small_engine(), obs=obs)
        with ScriptedServer(always_busy) as busy_node:
            with BackgroundService(service) as background:
                host, port = background.start()
                healthy = f"{host}:{port}"
                busy = f"{busy_node.host}:{busy_node.port}"
                client, sleeps = failover_client(
                    [busy, healthy], obs=obs,
                    backoff=BackoffPolicy(max_retries=2),
                )
                with client:
                    result = client.retrieve(read_term("p(X)."))
        assert len(result.candidates) == 3
        assert sleeps == []  # same-pass failover, no backoff sleep
        health = client.health_of(busy)
        assert health.busy_rejections >= 1
        assert client.health_of(healthy).busy_rejections == 0
        assert obs.registry.total("net.failover.busy") >= 1

    def test_busy_replica_is_deprioritised_on_the_next_call(self):
        """After a busy answer the quarantined replica drops to the back
        of the candidate order while the penalty lasts."""
        service = RetrievalService(small_engine())
        with ScriptedServer(always_busy) as busy_node:
            with BackgroundService(service) as background:
                host, port = background.start()
                healthy = f"{host}:{port}"
                busy = f"{busy_node.host}:{busy_node.port}"
                # Frozen clock: the busy quarantine can never expire
                # mid-test, so the candidate order is deterministic.
                client, _ = failover_client(
                    [busy, healthy], clock=lambda: 0.0
                )
                with client:
                    client.retrieve(read_term("p(X)."))
                    assert client._ordered_addresses()[0] == healthy
                    # Second call goes straight to the healthy node: the
                    # busy node's connection count must not grow.
                    before = busy_node.connections
                    client.retrieve(read_term("p(X)."))
                    assert busy_node.connections == before

    def test_all_replicas_busy_surfaces_server_busy(self):
        with ScriptedServer(always_busy, always_busy) as node:
            address = f"{node.host}:{node.port}"
            client, sleeps = failover_client(
                [address], backoff=BackoffPolicy(max_retries=1),
            )
            with client:
                with pytest.raises(ServerBusy):
                    client.retrieve(read_term("p(X)."))
        assert len(sleeps) == 1  # one full failed pass -> one backoff


class TestDeadReplicaFailover:
    def test_connect_refused_fails_over_same_pass(self):
        service = RetrievalService(small_engine())
        with BackgroundService(service) as background:
            host, port = background.start()
            # A port nothing listens on: immediate ECONNREFUSED.
            probe = ScriptedServer()
            probe.close()
            dead = f"{probe.host}:{probe.port}"
            healthy = f"{host}:{port}"
            client, sleeps = failover_client([dead, healthy])
            with client:
                result = client.retrieve(read_term("p(X)."))
        assert len(result.candidates) == 3
        assert sleeps == []
        assert client.health_of(dead).consecutive_failures >= 1

    def test_set_addresses_preserves_health_of_survivors(self):
        probe = ScriptedServer()
        probe.close()
        dead = f"{probe.host}:{probe.port}"
        client, _ = failover_client([dead])
        try:
            with pytest.raises(Exception):
                client.retrieve(read_term("p(X)."), deadline_s=0.5)
            failures = client.health_of(dead).consecutive_failures
            assert failures >= 1
            client.set_addresses([dead, "127.0.0.1:1"])
            assert client.health_of(dead).consecutive_failures == failures
        finally:
            client.close()

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError):
            FailoverClient([])
        client, _ = failover_client(["127.0.0.1:1"])
        with client:
            with pytest.raises(ValueError):
                client.set_addresses([])

    def test_malformed_address_rejected(self):
        with pytest.raises(ValueError):
            FailoverClient(["no-port-here"])
