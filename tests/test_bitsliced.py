"""The bit-sliced FS1 index against the naive scan: identical candidates.

The whole point of :class:`repro.scw.BitSlicedIndex` is that it is a
pure representation change — column ANDs over packed bit-planes must
select exactly the entries the per-entry ``scheme.matches`` loop
selects, for every scheme parameterisation and query shape.  The
property suite here drives both engines over random knowledge bases and
queries (including the structural edge cases: all-variable queries,
shared variables, and truncation past ``max_args``).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import Instrumentation
from repro.scw import (
    BitSlicedIndex,
    CodewordScheme,
    FirstStageFilter,
    SchemeMismatchError,
    SecondaryIndexFile,
)
from repro.terms import Struct, Var, read_term
from tests.strategies import clause_heads

SCHEME = CodewordScheme(width=64, bits_per_key=2, max_args=12)


def build_index(
    heads, scheme: CodewordScheme = SCHEME, indicator=("p", 3)
) -> SecondaryIndexFile:
    index = SecondaryIndexFile(scheme, indicator)
    for position, head in enumerate(heads):
        index.add(head, position * 32)
    return index


class TestScanEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(clause_heads(arity=3), min_size=0, max_size=20),
        st.lists(clause_heads(arity=3), min_size=1, max_size=6),
    )
    def test_random_kb_and_queries(self, heads, queries):
        index = build_index(heads)
        for query in queries:
            codeword = SCHEME.query_codeword(query)
            assert index.bitsliced.scan(codeword) == index.scan(codeword)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(clause_heads(arity=3), min_size=0, max_size=16),
        st.lists(clause_heads(arity=3), min_size=1, max_size=8),
    )
    def test_batch_equals_solo(self, heads, queries):
        index = build_index(heads)
        codewords = [SCHEME.query_codeword(q) for q in queries]
        batched, _ = index.bitsliced.scan_batch(codewords)
        assert batched == [index.scan(cw) for cw in codewords]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(clause_heads(arity=2), min_size=1, max_size=10),
        st.lists(clause_heads(arity=2), min_size=1, max_size=10),
        clause_heads(arity=2),
    )
    def test_incremental_add_stays_in_sync(self, first, second, query):
        """The lazily-built view must track subsequent index appends."""
        index = build_index(first, indicator=("p", 2))
        assert index.bitsliced is index.bitsliced  # built once
        for position, head in enumerate(second):
            index.add(head, (len(first) + position) * 32)
        codeword = SCHEME.query_codeword(query)
        assert index.bitsliced.scan(codeword) == index.scan(codeword)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=8, max_value=128),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=14),
        st.lists(clause_heads(arity=3), min_size=0, max_size=12),
        clause_heads(arity=3),
    )
    def test_scheme_parameter_sweep(
        self, width, bits_per_key, max_args, heads, query
    ):
        scheme = CodewordScheme(
            width=width, bits_per_key=bits_per_key, max_args=max_args
        )
        index = build_index(heads, scheme=scheme)
        codeword = scheme.query_codeword(query)
        assert index.bitsliced.scan(codeword) == index.scan(codeword)


class TestStructuralEdges:
    HEADS = [
        "p(a, 1, x)",
        "p(b, 2, y)",
        "p(X, X, z)",
        "p(A, B, C)",
        "p([1, 2], [], f(g))",
    ]

    def edge_index(self):
        return build_index([read_term(t) for t in self.HEADS])

    @pytest.mark.parametrize(
        "query",
        [
            "p(X, Y, Z)",  # all-variable: every entry survives
            "p(_, _, _)",  # anonymous variables, same outcome
            "p(X, X, Y)",  # shared variable: invisible to the codewords
            "p(a, 1, x)",
            "p(b, W, y)",
            "p([1, 2], E, F)",
        ],
    )
    def test_edge_queries(self, query):
        index = self.edge_index()
        codeword = SCHEME.query_codeword(read_term(query))
        assert index.bitsliced.scan(codeword) == index.scan(codeword)

    def test_all_variable_query_returns_everything(self):
        index = self.edge_index()
        codeword = SCHEME.query_codeword(read_term("p(X, Y, Z)"))
        assert index.bitsliced.scan(codeword) == [
            e.address for e in index
        ]

    def test_twelve_argument_truncation(self):
        """Arguments past ``max_args`` are unconstrained on both sides."""
        arity = SCHEME.max_args + 2  # 14 > the CLARE prototype's 12
        heads = [
            Struct("wide", tuple(read_term(f"k{i}_{j}") for j in range(arity)))
            for i in range(6)
        ]
        index = build_index(heads, indicator=("wide", arity))
        # A query differing only in the truncated tail matches everything
        # its encoded prefix matches — on both engines.
        for i in range(6):
            args = list(heads[i].args)
            args[-1] = read_term("different")
            args[-2] = Var("T")
            query = Struct("wide", tuple(args))
            codeword = SCHEME.query_codeword(query)
            naive = index.scan(codeword)
            assert index.bitsliced.scan(codeword) == naive
            assert (i * 32) in naive

    # 14-argument heads draw dozens of atoms each; the occasional quoted
    # name the struct strategy rejects is enough to trip the filter
    # health check on an unlucky run, so it is suppressed here.
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    @given(
        st.lists(clause_heads(functor="wide", arity=14), min_size=0, max_size=8),
        clause_heads(functor="wide", arity=14),
    )
    def test_truncation_property(self, heads, query):
        index = build_index(heads, indicator=("wide", 14))
        codeword = SCHEME.query_codeword(query)
        assert index.bitsliced.scan(codeword) == index.scan(codeword)


class TestFirstStageFilterModes:
    def filters(self):
        obs = Instrumentation()
        return (
            FirstStageFilter(SCHEME, mode="bitsliced", obs=obs),
            FirstStageFilter(SCHEME, mode="naive", obs=obs),
            obs,
        )

    def test_modes_agree_and_share_the_timing_model(self):
        index = build_index(
            [read_term(t) for t in TestStructuralEdges.HEADS]
        )
        bitsliced, naive, _ = self.filters()
        for text in ("p(a, 1, x)", "p(X, 2, Y)", "p(U, V, W)"):
            query = read_term(text)
            fast = bitsliced.search(index, query)
            slow = naive.search(index, query)
            assert fast == slow  # addresses AND simulated accounting

    def test_search_batch_equals_search(self):
        index = build_index(
            [read_term(t) for t in TestStructuralEdges.HEADS]
        )
        bitsliced, _, _ = self.filters()
        queries = [
            read_term(t)
            for t in ("p(a, 1, x)", "p(b, Q, R)", "p(S, T, z)", "p(a, 1, x)")
        ]
        batched = bitsliced.search_batch(index, queries)
        assert batched == [bitsliced.search(index, q) for q in queries]

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            FirstStageFilter(SCHEME, mode="quantum")

    def test_scheme_mismatch_is_typed(self):
        index = build_index([read_term("p(a, 1, x)")])
        other = FirstStageFilter(CodewordScheme(width=96))
        with pytest.raises(SchemeMismatchError):
            other.search(index, read_term("p(a, 1, x)"))
        # Still a ValueError for pre-existing callers.
        with pytest.raises(ValueError):
            other.search(index, read_term("p(a, 1, x)"))

    def test_query_codeword_cache_hits_on_equivalent_goals(self):
        index = build_index(
            [read_term(t) for t in TestStructuralEdges.HEADS]
        )
        bitsliced, _, obs = self.filters()
        # p(_, 1, x) and p(Fresh, 1, x) are the same retrieval: one
        # canonical key, one hashing pass.
        r1 = bitsliced.search(index, read_term("p(_, 1, x)"))
        r2 = bitsliced.search(index, read_term("p(Fresh, 1, x)"))
        assert r1 == r2
        assert obs.registry.total("fs1.codeword_cache.misses") == 1
        assert obs.registry.total("fs1.codeword_cache.hits") == 1

    def test_columns_touched_metric_accumulates(self):
        index = build_index(
            [read_term(t) for t in TestStructuralEdges.HEADS]
        )
        bitsliced, _, obs = self.filters()
        bitsliced.search(index, read_term("p(a, 1, x)"))
        assert obs.registry.total("fs1.bitsliced.columns_touched") > 0
        # An unconstrained query touches no columns at all.
        before = obs.registry.total("fs1.bitsliced.columns_touched")
        bitsliced.search(index, read_term("p(X, Y, Z)"))
        assert obs.registry.total("fs1.bitsliced.columns_touched") == before


class TestBitSlicedIndexDirect:
    def test_empty_index(self):
        sliced = BitSlicedIndex(SCHEME)
        assert len(sliced) == 0
        assert sliced.scan(SCHEME.query_codeword(read_term("p(a, b, c)"))) == []

    def test_addresses_come_back_in_entry_order(self):
        index = build_index(
            [read_term("p(a, 1, x)") for _ in range(5)]
        )
        codeword = SCHEME.query_codeword(read_term("p(a, 1, x)"))
        assert index.bitsliced.scan(codeword) == [0, 32, 64, 96, 128]


class TestLazyEnumeration:
    """Pin the allocation behaviour of survivor enumeration."""

    def test_all_variable_query_touches_no_columns(self):
        index = build_index(
            [read_term(f"p(a{i}, {i}, x)") for i in range(12)]
        ).bitsliced
        codeword = SCHEME.query_codeword(read_term("p(X, Y, Z)"))
        addresses, columns_touched = index.scan_info(codeword)
        assert columns_touched == 0
        assert addresses == [i * 32 for i in range(12)]

    def test_all_variable_batch_touches_no_columns(self):
        index = build_index(
            [read_term(f"p(a{i}, {i}, x)") for i in range(6)]
        ).bitsliced
        codeword = SCHEME.query_codeword(read_term("p(X, _, Z)"))
        results, columns_touched = index.scan_batch([codeword, codeword])
        assert columns_touched == 0
        assert results == [[i * 32 for i in range(6)]] * 2

    def test_iter_scan_is_lazy_and_complete(self):
        index = build_index(
            [read_term("p(a, 1, x)") for _ in range(8)]
        ).bitsliced
        codeword = SCHEME.query_codeword(read_term("p(a, Y, Z)"))
        lazy = index.iter_scan(codeword)
        import types

        assert isinstance(lazy, types.GeneratorType)
        assert next(lazy) == 0  # partial consumption is fine
        assert [0, *lazy] == index.scan(codeword)

    def test_packed_columns_round_trip(self):
        index = build_index(
            [read_term(f"p(a{i}, {i}, x)") for i in range(9)]
        ).bitsliced
        column_bytes, columns, planes = index.packed_columns()
        rebuilt = BitSlicedIndex.from_packed(
            SCHEME, [i * 32 for i in range(9)], column_bytes, columns, planes
        )
        for text in ("p(a1, Y, Z)", "p(X, Y, Z)", "p(a2, 2, x)"):
            codeword = SCHEME.query_codeword(read_term(text))
            assert rebuilt.scan(codeword) == index.scan(codeword)
