"""Tests for the observability layer: metrics, tracing, pipeline wiring."""

import json

import pytest

from repro.crs import ClauseRetrievalServer, CRSFrontEnd, SearchMode
from repro.engine import PrologMachine
from repro.obs import (
    Counter,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    TraceRecorder,
    get_default,
    set_default,
)
from repro.storage import KnowledgeBase, Residency
from repro.terms import read_term


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.value("hits") == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("retrievals", mode="fs1").inc()
        registry.counter("retrievals", mode="fs2").inc(4)
        assert registry.value("retrievals", mode="fs1") == 1
        assert registry.value("retrievals", mode="fs2") == 4
        assert registry.total("retrievals") == 5

    def test_gauge_up_and_down(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("active")
        gauge.inc(3)
        gauge.dec()
        assert registry.value("active") == 2
        gauge.set(7)
        assert registry.value("active") == 7

    def test_histogram_buckets(self):
        histogram = Histogram("h", buckets=(1, 10, 100))
        for sample in (0, 1, 5, 50, 5000):
            histogram.observe(sample)
        assert histogram.counts == [2, 1, 1, 1]  # <=1, <=10, <=100, +Inf
        assert histogram.count == 5
        assert histogram.min == 0 and histogram.max == 5000
        assert histogram.mean == pytest.approx(5056 / 5)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_and_json(self):
        registry = MetricsRegistry()
        registry.counter("a", mode="s").inc(2)
        registry.histogram("h", buckets=(1, 2)).observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["a{mode=s}"] == {"type": "counter", "value": 2}
        assert snapshot["h"]["count"] == 1
        parsed = json.loads(registry.to_json())
        assert parsed["a{mode=s}"]["value"] == 2

    def test_render_lists_everything(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        lines = registry.render().splitlines()
        assert lines[0].startswith("alpha")
        assert lines[1].startswith("zeta")


class TestTracing:
    def test_span_nesting_parent_ids(self):
        obs = Instrumentation()
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        spans = {s.name: s for s in obs.recorder}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert outer.duration_s >= 0

    def test_ring_buffer_capacity(self):
        obs = Instrumentation(recorder=TraceRecorder(capacity=4))
        for n in range(10):
            with obs.span(f"s{n}"):
                pass
        assert len(obs.recorder) == 4
        assert obs.recorder.spans()[0].name == "s6"

    def test_ndjson_roundtrip(self, tmp_path):
        obs = Instrumentation()
        with obs.span("stage", bytes=12):
            pass
        path = tmp_path / "trace.ndjson"
        assert obs.recorder.write_ndjson(str(path)) == 1
        line = json.loads(path.read_text().strip())
        assert line["name"] == "stage"
        assert line["attrs"]["bytes"] == 12
        assert line["duration_s"] >= 0

    def test_disabled_is_a_noop(self):
        obs = Instrumentation(enabled=False)
        with obs.span("x") as span:
            span.set(ignored=True)
        obs.counter("c").inc()
        obs.histogram("h").observe(1)
        assert len(obs.recorder) == 0
        assert len(obs.registry) == 0

    def test_default_swap_and_restore(self):
        mine = Instrumentation()
        previous = set_default(mine)
        try:
            assert get_default() is mine
        finally:
            set_default(previous)
        assert get_default() is previous


def disk_machine(obs, clauses=100, cache_size=0):
    kb = KnowledgeBase(obs=obs)
    kb.consult_text(
        " ".join(f"item(i{n}, cat{n % 5})." for n in range(clauses)),
        module="data",
    )
    kb.module("data").pin(Residency.DISK)
    kb.sync_to_disk()
    crs = ClauseRetrievalServer(kb, cache_size=cache_size, obs=obs)
    return PrologMachine(kb, crs=crs, obs=obs, trace_retrievals=64)


class TestPipelineInstrumentation:
    def test_spans_cover_every_stage(self):
        """One traced run emits disk, FS1, FS2 and software spans."""
        obs = Instrumentation()
        machine = disk_machine(obs)
        for mode in SearchMode:
            machine.mode = mode
            machine.succeeds("item(i5, _)")
        names = obs.recorder.span_names()
        assert {
            "engine.retrieve",
            "crs.retrieve",
            "disk.read",
            "fs1.scan",
            "fs2.search",
            "software.scan",
        } <= names

    def test_ndjson_stage_coverage(self, tmp_path):
        obs = Instrumentation()
        machine = disk_machine(obs)
        for mode in SearchMode:
            machine.mode = mode
            machine.succeeds("item(i7, _)")
        path = tmp_path / "trace.ndjson"
        obs.recorder.write_ndjson(str(path))
        names = {json.loads(line)["name"] for line in path.read_text().splitlines()}
        for stage in ("disk.read", "fs1.scan", "fs2.search", "software.scan"):
            assert stage in names

    def test_registry_agrees_with_retrieval_stats(self):
        """Registry totals equal the per-call RetrievalStats sums."""
        obs = Instrumentation()
        machine = disk_machine(obs)
        for mode in SearchMode:
            machine.mode = mode
            machine.succeeds("item(i3, _)")
            machine.succeeds("item(_, cat2)")
        per_call = [stats for _, stats in machine.trace if stats is not None]
        registry = obs.registry
        assert registry.total("crs.retrievals") == len(per_call)
        assert registry.total("crs.clauses_scanned") == sum(
            s.clauses_total for s in per_call
        )
        assert registry.total("crs.candidates_returned") == sum(
            s.final_candidates for s in per_call
        )
        assert registry.total("crs.fs2_search_calls") == sum(
            s.fs2_search_calls for s in per_call
        )
        assert registry.value("fs2.search_calls") == sum(
            s.fs2_search_calls for s in per_call
        )
        assert registry.total("crs.sim_filter_time_s") == pytest.approx(
            sum(s.filter_time_s for s in per_call)
        )

    def test_cache_counters(self):
        obs = Instrumentation()
        machine = disk_machine(obs, cache_size=8)
        machine.succeeds("item(i3, _)")
        machine.succeeds("item(i3, _)")
        assert obs.registry.value("crs.cache.misses") == 1
        assert obs.registry.value("crs.cache.hits") == 1
        # A hit still counts as a retrieval, matching QueryStats...
        assert obs.registry.total("crs.retrievals") == 2
        # ...with logical counts preserved and no physical time added.
        assert obs.registry.total("crs.sim_filter_time_s") == machine.stats.filter_time_s

    def test_false_drop_accounting(self):
        obs = Instrumentation()
        machine = disk_machine(obs)
        machine.mode = SearchMode.BOTH
        list(machine.solve_text("item(i9, C)"))
        registry = obs.registry
        # fs2 examined = fs1 candidates; satisfiers <= examined.
        assert registry.value("fs2.clauses_examined") == registry.value(
            "fs1.candidates"
        )
        assert registry.value("fs2.false_drops") == registry.value(
            "fs2.clauses_examined"
        ) - registry.value("fs2.satisfiers")

    def test_lock_and_txn_metrics(self):
        obs = Instrumentation()
        kb = KnowledgeBase(obs=obs)
        kb.consult_text("p(a). p(b).")
        front_end = CRSFrontEnd(ClauseRetrievalServer(kb, obs=obs))
        reader = front_end.connect()
        writer = front_end.connect()
        reader.retrieve(read_term("p(X)"))
        from repro.crs import WouldBlock

        with pytest.raises(WouldBlock):
            writer.assertz(read_term("p(c)"))
        reader.commit()
        writer.commit()
        registry = obs.registry
        assert registry.total("locks.waits") == 1
        assert registry.total("locks.acquired") >= 2
        assert registry.value("txn.begun") == 2
        assert registry.value("txn.commits") == 2
        assert registry.value("txn.active") == 0

    def test_solutions_records_ground_truth_false_drops(self):
        obs = Instrumentation()
        kb = KnowledgeBase(obs=obs)
        kb.consult_text("p(f(a)). p(f(b)). p(g(a)).")
        crs = ClauseRetrievalServer(kb, obs=obs)
        matches = crs.solutions(read_term("p(f(a))"), mode=SearchMode.SOFTWARE)
        assert len(matches) == 1
        registry = obs.registry
        assert registry.value("crs.true_matches") == 1
        assert (
            registry.value("crs.false_drops")
            == registry.total("crs.candidates_returned") - 1
        )
