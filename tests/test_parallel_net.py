"""The network service over the multi-core data plane.

A short, hard-bounded smoke: :class:`~repro.net.RetrievalService`
fronting a :class:`~repro.parallel.ProcessShardedRetrievalServer`
(spawned shard workers over shared mmap segments) must serve retrieve,
batch, mutate, and solve over real loopback sockets exactly like the
threaded engine does.  Every test carries its own timeout so a wedged
worker pipe fails the suite instead of hanging it.
"""

import dataclasses

import pytest

from repro.cluster import ShardedRetrievalServer
from repro.net import BackgroundService, RetrievalClient, RetrievalService
from repro.parallel import ProcessShardedRetrievalServer
from repro.terms import read_term

PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(a, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
"""

TIMEOUT_S = 30.0


def fingerprint(result):
    return (
        [str(c) for c in result.candidates],
        dataclasses.astuple(result.stats),
    )


@pytest.fixture(scope="module")
def process_address():
    engine = ProcessShardedRetrievalServer(2)
    engine.consult_text(PROGRAM)
    engine.start()
    service = RetrievalService(
        engine, max_in_flight=4, executor_workers=4
    )
    with BackgroundService(service) as background:
        yield background.start()
    engine.close()


@pytest.fixture(scope="module")
def threaded_address():
    engine = ShardedRetrievalServer(2)
    engine.consult_text(PROGRAM)
    service = RetrievalService(engine, max_in_flight=4)
    with BackgroundService(service) as background:
        yield background.start()


class TestProcessBackedService:
    def test_retrieve_matches_threaded_service(
        self, process_address, threaded_address
    ):
        with RetrievalClient(*process_address) as proc_client, RetrievalClient(
            *threaded_address
        ) as thread_client:
            for goal_text in ("edge(a, X)", "edge(X, Y)", "path(a, Z)"):
                goal = read_term(goal_text)
                got = proc_client.retrieve(goal, deadline_s=TIMEOUT_S)
                expected = thread_client.retrieve(goal, deadline_s=TIMEOUT_S)
                assert fingerprint(got) == fingerprint(expected), goal_text

    def test_batch_and_solve_over_processes(self, process_address):
        with RetrievalClient(*process_address) as client:
            goals = [read_term("edge(a, X)"), read_term("edge(X, Y)")]
            results = client.retrieve_batch(goals, deadline_s=TIMEOUT_S)
            assert [len(r.candidates) for r in results] == [2, 4]
            answers = list(
                client.solve(
                    read_term("path(a, Z)"),
                    deadline_s=TIMEOUT_S,
                    max_solutions=10,
                )
            )
            bound = sorted(str(answer["Z"]) for answer in answers)
            assert bound == ["b", "c", "d", "d"]

    def test_mutations_propagate_to_the_workers(self, process_address):
        with RetrievalClient(*process_address) as client:
            client.mutate(
                "assertz", read_term("edge(d, zz)"), deadline_s=TIMEOUT_S
            )
            result = client.retrieve(
                read_term("edge(d, X)"), deadline_s=TIMEOUT_S
            )
            assert sorted(str(c) for c in result.candidates) == ["edge(d,zz)."]
