"""Unit tests for the Edinburgh Prolog reader."""

import pytest

from repro.terms import (
    NIL,
    Atom,
    Float,
    Int,
    ReaderError,
    Struct,
    TermReader,
    Var,
    make_list,
    read_program,
    read_term,
)


class TestConstants:
    def test_plain_atom(self):
        assert read_term("foo") == Atom("foo")

    def test_atom_with_digits_underscore(self):
        assert read_term("foo_bar2") == Atom("foo_bar2")

    def test_quoted_atom(self):
        assert read_term("'hello world'") == Atom("hello world")

    def test_quoted_atom_escapes(self):
        assert read_term(r"'a\nb'") == Atom("a\nb")
        assert read_term("'it''s'") == Atom("it's")

    def test_symbolic_atom(self):
        assert read_term("'++'") == Atom("++")

    def test_integer(self):
        assert read_term("42") == Int(42)

    def test_negative_integer(self):
        assert read_term("-7") == Int(-7)

    def test_hex_integer(self):
        assert read_term("0xff") == Int(255)

    def test_char_code(self):
        assert read_term("0'a") == Int(ord("a"))
        assert read_term(r"0'\n") == Int(10)

    def test_float(self):
        assert read_term("3.14") == Float(3.14)
        assert read_term("1.0e3") == Float(1000.0)
        assert read_term("-2.5") == Float(-2.5)

    def test_string_as_code_list(self):
        assert read_term('"ab"') == make_list([Int(97), Int(98)])


class TestVariables:
    def test_variable(self):
        assert read_term("X") == Var("X")
        assert read_term("_Tail") == Var("_Tail")

    def test_anonymous(self):
        assert read_term("_") == Var("_")

    def test_shared_variable_same_object(self):
        t = read_term("f(X, X)")
        assert isinstance(t, Struct)
        assert t.args[0] == t.args[1]


class TestCompound:
    def test_simple_struct(self):
        assert read_term("f(a, b)") == Struct("f", (Atom("a"), Atom("b")))

    def test_nested(self):
        assert read_term("f(g(1), h(X))") == Struct(
            "f", (Struct("g", (Int(1),)), Struct("h", (Var("X"),)))
        )

    def test_quoted_functor(self):
        assert read_term("'my pred'(1)") == Struct("my pred", (Int(1),))

    def test_curly(self):
        assert read_term("{a}") == Struct("{}", (Atom("a"),))
        assert read_term("{}") == Atom("{}")

    def test_parenthesised(self):
        assert read_term("(a)") == Atom("a")


class TestLists:
    def test_empty(self):
        assert read_term("[]") == NIL

    def test_simple(self):
        assert read_term("[1,2,3]") == make_list([Int(1), Int(2), Int(3)])

    def test_tail(self):
        assert read_term("[a,b|T]") == make_list(
            [Atom("a"), Atom("b")], tail=Var("T")
        )

    def test_nested_lists(self):
        assert read_term("[[1],[2]]") == make_list(
            [make_list([Int(1)]), make_list([Int(2)])]
        )


class TestOperators:
    def test_clause(self):
        t = read_term("head :- body")
        assert t == Struct(":-", (Atom("head"), Atom("body")))

    def test_conjunction_right_assoc(self):
        t = read_term("a, b, c")
        assert t == Struct(",", (Atom("a"), Struct(",", (Atom("b"), Atom("c")))))

    def test_arithmetic_precedence(self):
        t = read_term("1 + 2 * 3")
        assert t == Struct("+", (Int(1), Struct("*", (Int(2), Int(3)))))

    def test_left_assoc(self):
        t = read_term("1 - 2 - 3")
        assert t == Struct("-", (Struct("-", (Int(1), Int(2))), Int(3)))

    def test_comparison(self):
        t = read_term("X =< 3")
        assert t == Struct("=<", (Var("X"), Int(3)))

    def test_if_then_else(self):
        t = read_term("(a -> b ; c)")
        assert t == Struct(";", (Struct("->", (Atom("a"), Atom("b"))), Atom("c")))

    def test_is(self):
        t = read_term("X is Y + 1")
        assert t == Struct("is", (Var("X"), Struct("+", (Var("Y"), Int(1)))))

    def test_negation(self):
        t = read_term("\\+ a")
        assert t == Struct("\\+", (Atom("a"),))

    def test_unary_minus_on_var(self):
        t = read_term("-X")
        assert t == Struct("-", (Var("X"),))

    def test_operator_as_plain_atom_in_args(self):
        t = read_term("f(+, -)")
        assert t == Struct("f", (Atom("+"), Atom("-")))

    def test_directive(self):
        t = read_term(":- dynamic(foo)")
        assert t == Struct(":-", (Struct("dynamic", (Atom("foo"),)),))


class TestPrograms:
    def test_read_program(self):
        clauses = read_program("a. b(1). c :- a, b(X).")
        assert len(clauses) == 3
        assert clauses[0] == Atom("a")
        assert clauses[1] == Struct("b", (Int(1),))

    def test_variables_scoped_per_clause(self):
        clauses = read_program("p(X). q(X).")
        assert clauses[0] == Struct("p", (Var("X"),))
        assert clauses[1] == Struct("q", (Var("X"),))

    def test_comments_ignored(self):
        clauses = read_program(
            """
            % a line comment
            a.  /* block
                   comment */ b.
            """
        )
        assert clauses == [Atom("a"), Atom("b")]

    def test_incremental_reader(self):
        reader = TermReader("a. b. c.")
        assert [str(t) for t in reader] == ["a", "b", "c"]

    def test_clause_terminator_attached(self):
        clauses = read_program("a:-b.")
        assert clauses == [Struct(":-", (Atom("a"), Atom("b")))]


class TestErrors:
    def test_unterminated_quote(self):
        with pytest.raises(ReaderError):
            read_term("'abc")

    def test_unbalanced_paren(self):
        with pytest.raises(ReaderError):
            read_term("f(a")

    def test_trailing_garbage(self):
        with pytest.raises(ReaderError):
            read_term("a b")

    def test_missing_terminator(self):
        with pytest.raises(ReaderError):
            read_program("a b")

    def test_error_has_position(self):
        with pytest.raises(ReaderError) as excinfo:
            read_term("f(a,\n   ]")
        assert excinfo.value.line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(ReaderError):
            read_program("/* never ends")


class TestReaderEdgeCases:
    def test_deeply_nested(self):
        depth = 60
        text = "f(" * depth + "x" + ")" * depth
        term = read_term(text)
        from repro.terms import term_depth

        assert term_depth(term) == depth

    def test_long_conjunction(self):
        text = ", ".join(f"g{i}" for i in range(50))
        term = read_term(text)
        from repro.terms import body_goals

        assert len(body_goals(term)) == 50

    def test_unicode_atom_names(self):
        assert read_term("'héllo wörld'") == Atom("héllo wörld")

    def test_superscript_digit_rejected(self):
        with pytest.raises(ReaderError):
            read_term("²")  # '²' is not an ASCII digit

    def test_comment_only_program(self):
        assert read_program("% nothing here\n/* at all */") == []

    def test_zero_arg_parenthesised_operator(self):
        assert read_term("(a , b)") == Struct(",", (Atom("a"), Atom("b")))

    def test_nested_curly(self):
        term = read_term("{a, {b}}")
        assert term == Struct(
            ",", (Atom("a"), Struct("{}", (Atom("b"),)))
        ) or isinstance(term, Struct)

    def test_operator_priority_clash_rejected(self):
        # xfx at 700 cannot chain: a = b = c is a syntax error.
        with pytest.raises(ReaderError):
            read_term("a = b = c")

    def test_caret_operator(self):
        term = read_term("X ^ p(X)")
        assert term == Struct("^", (Var("X"), Struct("p", (Var("X"),))))
