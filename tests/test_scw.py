"""Tests for the SCW+MB codeword scheme and the FS1 filter model."""

import pytest
from hypothesis import given, settings

from repro.pif import ClauseFile, SymbolTable
from repro.scw import (
    CodewordScheme,
    FirstStageFilter,
    SecondaryIndexFile,
)
from repro.terms import Clause, clause_from_term, read_term, rename_apart
from repro.unify import unifiable
from tests.strategies import clause_heads

SCHEME = CodewordScheme(width=64, bits_per_key=2, max_args=12)


def cw_match(query_text: str, head_text: str, scheme: CodewordScheme = SCHEME) -> bool:
    query = scheme.query_codeword(read_term(query_text))
    clause = scheme.clause_codeword(read_term(head_text))
    return scheme.matches(query, clause)


class TestSchemeValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CodewordScheme(width=4)
        with pytest.raises(ValueError):
            CodewordScheme(bits_per_key=0)
        with pytest.raises(ValueError):
            CodewordScheme(max_args=0)

    def test_equality_by_parameters(self):
        assert CodewordScheme(width=64) == CodewordScheme(width=64)
        assert CodewordScheme(width=64) != CodewordScheme(width=96)

    def test_entry_size(self):
        scheme = CodewordScheme(width=96, max_args=12)
        assert scheme.codeword_bytes == 12
        assert scheme.mask_bytes == 2
        assert scheme.entry_bytes() == 12 + 2 + 4


class TestCodewordGeneration:
    def test_deterministic(self):
        a = SCHEME.clause_codeword(read_term("p(a, b, c)"))
        b = SCHEME.clause_codeword(read_term("p(a, b, c)"))
        assert a == b

    def test_bits_per_key_respected(self):
        cw = SCHEME.clause_codeword(read_term("p(a)"))
        assert bin(cw.bits).count("1") == SCHEME.bits_per_key

    def test_variable_argument_sets_mask(self):
        cw = SCHEME.clause_codeword(read_term("p(X, b)"))
        assert cw.mask & 1
        assert not (cw.mask & 2)

    def test_variable_inside_structure_sets_mask(self):
        cw = SCHEME.clause_codeword(read_term("p(f(X))"))
        assert cw.mask & 1

    def test_tail_variable_sets_mask(self):
        cw = SCHEME.clause_codeword(read_term("p([a, b | T])"))
        assert cw.mask & 1

    def test_ground_clause_no_mask(self):
        cw = SCHEME.clause_codeword(read_term("p(a, f(b), [1, 2])"))
        assert cw.mask == 0

    def test_atom_head_empty(self):
        cw = SCHEME.clause_codeword(read_term("p"))
        assert cw.bits == 0 and cw.arg_bits == ()

    def test_saturation(self):
        empty = SCHEME.clause_codeword(read_term("p"))
        assert SCHEME.saturation(empty) == 0.0
        dense = SCHEME.clause_codeword(
            read_term("p(f(a1, a2, a3, a4), g(b1, b2, b3, b4))")
        )
        assert 0 < SCHEME.saturation(dense) <= 1


class TestMatching:
    def test_exact_ground_match(self):
        assert cw_match("p(a, b)", "p(a, b)")

    def test_distinct_constants_usually_reject(self):
        assert not cw_match("p(aaa, bbb)", "p(ccc, ddd)")

    def test_query_variable_unconstrained(self):
        assert cw_match("p(X, b)", "p(anything, b)")

    def test_clause_variable_masked(self):
        assert cw_match("p(a)", "p(X)")
        assert cw_match("p(f(g(1)))", "p(X)")

    def test_shared_variables_invisible(self):
        # The paper's married_couple example: SCW retrieves everything.
        assert cw_match("married_couple(S, S)", "married_couple(a, b)")
        assert cw_match("married_couple(S, S)", "married_couple(x, y)")

    def test_structure_functor_constrains(self):
        assert cw_match("p(f(a))", "p(f(a))")
        assert not cw_match("p(f(a))", "p(g(b))")

    def test_partial_structure(self):
        assert cw_match("p(f(X))", "p(f(anything))")

    def test_truncation_beyond_max_args(self):
        scheme = CodewordScheme(width=64, max_args=2)
        args_match = ", ".join(["a", "b", "zzz"])
        args_clause = ", ".join(["a", "b", "qqq"])
        # The third argument is not encoded: mismatch goes unseen.
        q = scheme.query_codeword(read_term(f"p({args_match})"))
        c = scheme.clause_codeword(read_term(f"p({args_clause})"))
        assert scheme.matches(q, c)

    def test_atom_query_matches_atom_clause(self):
        assert cw_match("p", "p")


class TestSoundnessProperty:
    @settings(max_examples=300)
    @given(clause_heads(), clause_heads())
    def test_no_false_negatives(self, query, head):
        """FS1 must pass every clause that fully unifies with the query."""
        if unifiable(query, rename_apart(head)):
            q = SCHEME.query_codeword(query)
            c = SCHEME.clause_codeword(head)
            assert SCHEME.matches(q, c), "FS1 dropped a true unifier"

    @settings(max_examples=150)
    @given(clause_heads(), clause_heads())
    def test_soundness_various_parameters(self, query, head):
        for scheme in (
            CodewordScheme(width=32, bits_per_key=1, max_args=2, max_depth=1),
            CodewordScheme(width=128, bits_per_key=3, max_args=12, max_depth=6),
        ):
            if unifiable(query, rename_apart(head)):
                q = scheme.query_codeword(query)
                c = scheme.clause_codeword(head)
                assert scheme.matches(q, c)


def build_index(clause_texts, indicator):
    symbols = SymbolTable()
    cf = ClauseFile(indicator, symbols)
    for text in clause_texts:
        cf.append(clause_from_term(read_term(text)))
    return cf, SecondaryIndexFile.build(cf, SCHEME)


class TestSecondaryIndex:
    def test_build_indexes_every_clause(self):
        cf, index = build_index(["p(a)", "p(b)", "p(X) :- q(X)"], ("p", 1))
        assert len(index) == 3

    def test_scan_filters(self):
        cf, index = build_index(
            ["p(apple)", "p(banana)", "p(cherry)"], ("p", 1)
        )
        addresses = index.scan(SCHEME.query_codeword(read_term("p(banana)")))
        expected = cf.record_addresses()[1]
        assert expected in addresses
        assert len(addresses) < 3  # at least some filtering

    def test_rule_heads_indexed(self):
        cf, index = build_index(
            ["anc(X, Y) :- parent(X, Y)", "anc(a, b)"], ("anc", 2)
        )
        addresses = index.scan(SCHEME.query_codeword(read_term("anc(a, b)")))
        assert set(addresses) == set(cf.record_addresses())  # rule head masked

    def test_size_accounting(self):
        cf, index = build_index(["p(a)", "p(b)"], ("p", 1))
        assert index.size_bytes() == 2 * SCHEME.entry_bytes()
        assert len(index.to_bytes()) == index.size_bytes()

    def test_index_much_smaller_than_clause_file(self):
        texts = [f"p(atom{i}, f(atom{i}, {i}), [{i}, {i + 1}])" for i in range(50)]
        cf, index = build_index(texts, ("p", 3))
        assert index.size_bytes() < cf.size_bytes()


class TestFirstStageFilter:
    def test_search_returns_candidates_and_stats(self):
        cf, index = build_index(["p(a)", "p(b)", "p(X)"], ("p", 1))
        fs1 = FirstStageFilter(SCHEME)
        result = fs1.search(index, read_term("p(a)"))
        addresses = cf.record_addresses()
        assert addresses[0] in result.candidate_addresses
        assert addresses[2] in result.candidate_addresses  # variable clause
        assert result.entries_scanned == 3
        assert result.bytes_scanned == index.size_bytes()
        assert result.scan_time_s == pytest.approx(
            index.size_bytes() / 4_500_000
        )

    def test_scheme_mismatch_rejected(self):
        cf, index = build_index(["p(a)"], ("p", 1))
        fs1 = FirstStageFilter(CodewordScheme(width=128))
        with pytest.raises(ValueError):
            fs1.search(index, read_term("p(a)"))

    def test_bad_scan_rate(self):
        with pytest.raises(ValueError):
            FirstStageFilter(SCHEME, scan_rate_bytes_per_sec=0)

    def test_scan_time_scales_with_index_size(self):
        _, small = build_index(["p(a)"], ("p", 1))
        _, large = build_index([f"p(a{i})" for i in range(100)], ("p", 1))
        fs1 = FirstStageFilter(SCHEME)
        t_small = fs1.search(small, read_term("p(a)")).scan_time_s
        t_large = fs1.search(large, read_term("p(a)")).scan_time_s
        assert t_large > t_small * 50
