"""Tests for the extended builtins and the Prolog-source library."""

import io

import pytest

from repro.engine import PrologError, PrologMachine
from repro.storage import KnowledgeBase
from repro.terms import term_to_string


def machine(program: str = "", **kwargs) -> PrologMachine:
    kb = KnowledgeBase()
    if program:
        kb.consult_text(program)
    return PrologMachine(kb, **kwargs)


def answers(m: PrologMachine, goal: str, var: str) -> list[str]:
    return [term_to_string(s[var]) for s in m.solve_text(goal)]


class TestControlExtensions:
    def test_once(self):
        m = machine("p(1). p(2).")
        assert answers(m, "once(p(X))", "X") == ["1"]

    def test_once_fails_when_goal_fails(self):
        m = machine("p(1).")
        assert not m.succeeds("once(fail)")

    def test_not_alias(self):
        m = machine("p(a).")
        assert m.succeeds("not(p(b))")
        assert not m.succeeds("not(p(a))")

    def test_forall(self):
        m = machine("p(1). p(2). p(3). even(2). big(2). big(3). big(1).")
        assert m.succeeds("forall(p(X), big(X))")
        assert not m.succeeds("forall(p(X), even(X))")

    def test_forall_vacuous(self):
        m = machine("p(1).")
        assert m.succeeds("forall(fail, whatever)")


class TestSorting:
    def test_msort_keeps_duplicates(self):
        m = machine("")
        assert answers(m, "msort([b, a, c, a], L)", "L") == ["[a,a,b,c]"]

    def test_sort_dedupes(self):
        m = machine("")
        assert answers(m, "sort([b, a, c, a], L)", "L") == ["[a,b,c]"]

    def test_sort_standard_order(self):
        m = machine("")
        assert answers(m, "sort([f(1), 2, foo, X], L)", "L")[0].startswith("[")
        # Var < Number < Atom < Compound
        result = answers(m, "msort([f(1), 2, foo], L)", "L")
        assert result == ["[2,foo,f(1)]"]

    def test_sort_improper_list_rejected(self):
        m = machine("")
        with pytest.raises(PrologError):
            m.succeeds("sort([a | T], L)")

    def test_compare(self):
        m = machine("")
        assert answers(m, "compare(O, 1, 2)", "O") == ["<"]
        assert answers(m, "compare(O, b, a)", "O") == [">"]
        assert answers(m, "compare(O, f(X), f(X))", "O") == ["="]


class TestIO:
    def test_write_and_nl_captured(self):
        out = io.StringIO()
        m = machine("", output=out)
        assert m.succeeds("write(hello), nl, write(f(X, 1))")
        assert out.getvalue() == "hello\nf(X,1)"

    def test_writeln_tab(self):
        out = io.StringIO()
        m = machine("", output=out)
        assert m.succeeds("tab(3), writeln(ok)")
        assert out.getvalue() == "   ok\n"

    def test_tab_validation(self):
        m = machine("")
        with pytest.raises(PrologError):
            m.succeeds("tab(foo)")


class TestAtomsAndNumbers:
    def test_atom_codes_forward(self):
        m = machine("")
        assert answers(m, "atom_codes(abc, L)", "L") == ["[97,98,99]"]

    def test_atom_codes_backward(self):
        m = machine("")
        assert answers(m, 'atom_codes(A, "hi")', "A") == ["hi"]

    def test_atom_codes_number(self):
        m = machine("")
        assert answers(m, "atom_codes(42, L)", "L") == ["[52,50]"]

    def test_atom_length(self):
        m = machine("")
        assert answers(m, "atom_length(hello, N)", "N") == ["5"]
        with pytest.raises(PrologError):
            m.succeeds("atom_length(1, N)")

    def test_succ(self):
        m = machine("")
        assert answers(m, "succ(3, X)", "X") == ["4"]
        assert answers(m, "succ(X, 4)", "X") == ["3"]
        assert not m.succeeds("succ(X, 0)")
        with pytest.raises(PrologError):
            m.succeeds("succ(X, Y)")


class TestLibrary:
    def lib(self, program=""):
        return machine(program, load_library=True)

    def test_member(self):
        m = self.lib()
        assert answers(m, "member(X, [a, b, c])", "X") == ["a", "b", "c"]
        assert m.succeeds("member(b, [a, b])")
        assert not m.succeeds("member(z, [a, b])")

    def test_memberchk_deterministic(self):
        m = self.lib()
        assert m.count_solutions("memberchk(a, [a, a, a])") == 1

    def test_append_both_ways(self):
        m = self.lib()
        assert answers(m, "append([1], [2, 3], L)", "L") == ["[1,2,3]"]
        assert m.count_solutions("append(_, _, [a, b, c])") == 4

    def test_reverse(self):
        m = self.lib()
        assert answers(m, "reverse([1, 2, 3], R)", "R") == ["[3,2,1]"]

    def test_nrev(self):
        m = self.lib()
        assert answers(m, "nrev([1, 2, 3, 4, 5], R)", "R") == ["[5,4,3,2,1]"]

    def test_last_nth(self):
        m = self.lib()
        assert answers(m, "last([a, b, c], X)", "X") == ["c"]
        assert answers(m, "nth0(1, [a, b, c], X)", "X")[0] == "b"
        assert answers(m, "nth1(1, [a, b, c], X)", "X")[0] == "a"

    def test_numeric_lists(self):
        m = self.lib()
        assert answers(m, "sum_list([1, 2, 3], S)", "S") == ["6"]
        assert answers(m, "max_list([3, 9, 2], M)", "M") == ["9"]
        assert answers(m, "min_list([3, 9, 2], M)", "M") == ["2"]
        assert answers(m, "numlist(1, 5, L)", "L") == ["[1,2,3,4,5]"]

    def test_select_permutation(self):
        m = self.lib()
        assert m.count_solutions("select(X, [a, b, c], R)") == 3
        assert m.count_solutions("permutation([a, b, c], P)") == 6

    def test_delete(self):
        m = self.lib()
        assert answers(m, "delete([a, b, a, c], a, R)", "R") == ["[b,c]"]

    def test_user_predicates_not_shadowed(self):
        m = self.lib("member(special, only_this).")
        assert answers(m, "member(X, only_this)", "X") == ["special"]
        # The library member/2 was skipped entirely.
        assert not m.succeeds("member(a, [a])")

    def test_library_module_assignment(self):
        m = self.lib()
        assert ("append", 3) in m.kb.module("library").indicators


class TestBagofSetof:
    def test_bagof_basic(self):
        m = machine("p(1). p(2). p(1).")
        assert answers(m, "bagof(X, p(X), L)", "L") == ["[1,2,1]"]

    def test_bagof_fails_when_no_solutions(self):
        m = machine("p(1).")
        assert not m.succeeds("bagof(X, fail, L)")

    def test_setof_sorts_and_dedupes(self):
        m = machine("p(2). p(1). p(2).")
        assert answers(m, "setof(X, p(X), L)", "L") == ["[1,2]"]

    def test_free_variable_grouping(self):
        m = machine("age(tom, 30). age(ann, 30). age(jim, 7).")
        groups = [
            (term_to_string(s["A"]), term_to_string(s["L"]))
            for s in m.solve_text("bagof(P, age(P, A), L)")
        ]
        assert ("30", "[tom,ann]") in groups
        assert ("7", "[jim]") in groups
        assert len(groups) == 2

    def test_caret_suppresses_grouping(self):
        m = machine("age(tom, 30). age(ann, 30). age(jim, 7).")
        assert answers(m, "bagof(P, A^age(P, A), L)", "L") == ["[tom,ann,jim]"]

    def test_setof_with_grouping(self):
        m = machine("owns(tom, cat). owns(tom, dog). owns(ann, cat).")
        groups = [
            (term_to_string(s["W"]), term_to_string(s["L"]))
            for s in m.solve_text("setof(T, owns(W, T), L)")
        ]
        assert groups == [("tom", "[cat,dog]")] + [("ann", "[cat]")] or len(groups) == 2

    def test_power_operator(self):
        m = machine("")
        assert answers(m, "X is 2 ^ 10", "X") == ["1024"]
