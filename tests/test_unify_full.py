"""Unit and property tests for full unification (repro.unify)."""

from hypothesis import given

from repro.terms import Atom, Int, Var, read_term, rename_apart, variables
from repro.unify import Bindings, occurs_in, unifiable, unify
from tests.strategies import terms


def u(left: str, right: str):
    return unify(read_term(left), read_term(right))


class TestBasicUnify:
    def test_identical_atoms(self):
        assert u("a", "a") is not None

    def test_distinct_atoms(self):
        assert u("a", "b") is None

    def test_numbers(self):
        assert u("1", "1") is not None
        assert u("1", "2") is None
        assert u("1", "1.0") is None  # int and float never unify

    def test_var_binds_constant(self):
        bindings = u("X", "a")
        assert bindings is not None
        assert bindings.walk(Var("X")) == Atom("a")

    def test_var_var(self):
        bindings = u("X", "Y")
        assert bindings is not None
        assert bindings.walk(Var("X")) == bindings.walk(Var("Y"))

    def test_struct_match(self):
        bindings = u("f(X, b)", "f(a, Y)")
        assert bindings is not None
        assert bindings.walk(Var("X")) == Atom("a")
        assert bindings.walk(Var("Y")) == Atom("b")

    def test_struct_functor_mismatch(self):
        assert u("f(a)", "g(a)") is None

    def test_struct_arity_mismatch(self):
        assert u("f(a)", "f(a, b)") is None

    def test_shared_variable_consistency(self):
        assert u("f(X, X)", "f(a, a)") is not None
        assert u("f(X, X)", "f(a, b)") is None

    def test_cross_binding(self):
        # The paper's DB_CROSS_BOUND_FETCH example f(X,a,b) vs f(A,a,A)
        # succeeds with X = b through the cross binding X = A, A = b.
        bindings = u("f(X, a, b)", "f(A, a, A)")
        assert bindings is not None
        assert bindings.walk(Var("X")) == Atom("b")
        # A genuinely inconsistent cross binding fails.
        assert u("f(X, b, X)", "f(A, A, c)") is None

    def test_lists(self):
        bindings = u("[1, 2 | T]", "[1, 2, 3]")
        assert bindings is not None
        assert bindings.resolve(Var("T")) == read_term("[3]")

    def test_deep_nesting(self):
        assert u("f(g(h(X)))", "f(g(h(1)))") is not None
        assert u("f(g(h(1)))", "f(g(h(2)))") is None

    def test_failure_restores_bindings(self):
        bindings = Bindings()
        result = unify(read_term("f(X, a)"), read_term("f(b, c)"), bindings)
        assert result is None
        assert len(bindings) == 0

    def test_extends_existing_bindings(self):
        bindings = Bindings()
        assert unify(Var("X"), Atom("a"), bindings) is not None
        assert unify(read_term("f(X)"), read_term("f(a)"), bindings) is not None
        assert unify(read_term("f(X)"), read_term("f(b)"), bindings) is None
        assert bindings.walk(Var("X")) == Atom("a")


class TestOccursCheck:
    def test_occurs_direct(self):
        assert unify(Var("X"), read_term("f(X)"), occurs_check=True) is None

    def test_occurs_allowed_without_check(self):
        assert unify(Var("X"), read_term("f(X)")) is not None

    def test_occurs_in(self):
        bindings = Bindings()
        bindings.bind(Var("Y"), read_term("g(X)"))
        assert occurs_in(Var("X"), read_term("f(Y)"), bindings)
        assert not occurs_in(Var("Z"), read_term("f(Y)"), bindings)


class TestBindings:
    def test_walk_chain(self):
        bindings = Bindings()
        bindings.bind(Var("X"), Var("Y"))
        bindings.bind(Var("Y"), Atom("a"))
        assert bindings.walk(Var("X")) == Atom("a")

    def test_resolve_deep(self):
        bindings = Bindings()
        bindings.bind(Var("X"), read_term("g(Y)"))
        bindings.bind(Var("Y"), Int(1))
        assert bindings.resolve(read_term("f(X)")) == read_term("f(g(1))")

    def test_trail_undo(self):
        bindings = Bindings()
        bindings.bind(Var("X"), Atom("a"))
        mark = bindings.mark()
        bindings.bind(Var("Y"), Atom("b"))
        bindings.undo_to(mark)
        assert Var("Y") not in bindings
        assert Var("X") in bindings

    def test_double_bind_rejected(self):
        bindings = Bindings()
        bindings.bind(Var("X"), Atom("a"))
        try:
            bindings.bind(Var("X"), Atom("b"))
        except ValueError:
            pass
        else:
            raise AssertionError("rebinding should raise")

    def test_copy_independent(self):
        bindings = Bindings()
        bindings.bind(Var("X"), Atom("a"))
        other = bindings.copy()
        other.bind(Var("Y"), Atom("b"))
        assert Var("Y") not in bindings


class TestUnifyProperties:
    @given(terms())
    def test_reflexive(self, term):
        assert unifiable(term, term)

    @given(terms(), terms())
    def test_symmetric(self, left, right):
        assert unifiable(left, right) == unifiable(right, left)

    @given(terms())
    def test_fresh_variable_unifies_anything(self, term):
        fresh = Var("FreshUnusedVariable")
        assert fresh not in variables(term) or unifiable(fresh, term)

    @given(terms())
    def test_renamed_copy_unifies(self, term):
        assert unifiable(term, rename_apart(term))

    @given(terms(), terms())
    def test_mgu_makes_terms_equal(self, left, right):
        right = rename_apart(right, suffix="_r")
        # Without occurs check, cyclic bindings can make resolve diverge;
        # restrict the assertion to the occurs-check-safe case.
        bindings = unify(left, right, occurs_check=True)
        if bindings is not None:
            assert bindings.resolve(left) == bindings.resolve(right)
