"""Deadline enforcement inside the cluster fan-out.

The simulated engines are uninterruptible once a retrieval starts, so
the place a stuck cluster actually wedges callers is the per-shard
lock queue and the fan-out join.  ``timeout=`` must bound both:
``retrieve`` gives up waiting for a held shard lock, ``retrieve_batch``
and :meth:`BatchExecutor.run` give up at the batch deadline, and all of
them raise the typed :class:`~repro.crs.RetrievalTimeout` (a
``TimeoutError`` subclass, so generic handlers still catch it) instead
of hanging or returning partial results.
"""

import threading
import time

import pytest

from repro.cluster import BatchExecutor, ShardedRetrievalServer, ShardingPolicy
from repro.crs import RetrievalTimeout
from repro.terms import read_term


def small_cluster(num_shards=2):
    server = ShardedRetrievalServer(num_shards, ShardingPolicy.FIRST_ARG)
    server.consult_text(
        "p(a, 1). p(b, 2). p(c, 3). p(d, 4). q(X, X). r(only)."
    )
    return server


class HeldLock:
    """Hold one shard's lock from another thread for the test's duration."""

    def __init__(self, shard):
        self.shard = shard
        self._release = threading.Event()
        self._held = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        with self.shard.lock:
            self._held.set()
            self._release.wait(timeout=30)

    def __enter__(self):
        self._thread.start()
        assert self._held.wait(timeout=10)
        return self

    def __exit__(self, *exc_info):
        self._release.set()
        self._thread.join(timeout=10)


class TestRetrieveTimeout:
    def test_timeout_is_a_timeout_error(self):
        assert issubclass(RetrievalTimeout, TimeoutError)

    def test_held_shard_lock_raises_within_budget(self):
        server = small_cluster()
        goal = read_term("p(X, Y)")  # unbound first arg: broadcasts
        with HeldLock(server.shards[0]):
            begin = time.monotonic()
            with pytest.raises(RetrievalTimeout):
                server.retrieve(goal, timeout=0.05)
            # It gave up near the deadline, not after some huge backstop.
            assert time.monotonic() - begin < 5.0

    def test_zero_timeout_on_held_lock_fails_fast(self):
        server = small_cluster()
        with HeldLock(server.shards[0]):
            with pytest.raises(RetrievalTimeout):
                server.retrieve(read_term("p(X, Y)"), timeout=0.0)

    def test_no_timeout_still_works(self):
        server = small_cluster()
        result = server.retrieve(read_term("p(a, X)"))
        assert [str(c) for c in result.candidates] == ["p(a,1)."]

    def test_generous_timeout_returns_normally(self):
        server = small_cluster()
        result = server.retrieve(read_term("p(a, X)"), timeout=30.0)
        assert [str(c) for c in result.candidates] == ["p(a,1)."]
        # Same answer as the untimed path, stats included.
        untimed = server.retrieve(read_term("p(a, X)"))
        assert result.stats == untimed.stats

    def test_lock_released_cluster_recovers(self):
        server = small_cluster()
        goal = read_term("p(X, Y)")
        with HeldLock(server.shards[0]):
            with pytest.raises(RetrievalTimeout):
                server.retrieve(goal, timeout=0.05)
        result = server.retrieve(goal, timeout=5.0)
        assert len(result.candidates) == 4


class TestRetrieveBatchTimeout:
    def test_held_lock_times_out_batch(self):
        server = small_cluster()
        goals = [read_term("p(X, Y)"), read_term("q(A, B)")]
        with HeldLock(server.shards[0]):
            with pytest.raises(RetrievalTimeout):
                server.retrieve_batch(goals, timeout=0.05)

    def test_batch_without_timeout_unchanged(self):
        server = small_cluster()
        goals = [read_term("p(a, X)"), read_term("r(W)")]
        results = server.retrieve_batch(goals)
        assert [len(r.candidates) for r in results] == [1, 1]


class TestBatchExecutorTimeout:
    def test_fanned_out_goals_time_out(self):
        server = small_cluster()
        executor = BatchExecutor(server)
        goals = [read_term("p(X, Y)"), read_term("q(A, B)"), read_term("r(W)")]
        with HeldLock(server.shards[0]):
            with pytest.raises(RetrievalTimeout):
                executor.run(goals, timeout=0.05)

    def test_batched_fs1_path_times_out(self):
        server = small_cluster()
        executor = BatchExecutor(server)
        goals = [read_term("p(X, Y)"), read_term("q(A, B)")]
        with HeldLock(server.shards[0]):
            with pytest.raises(RetrievalTimeout):
                executor.run(goals, batch_fs1=True, timeout=0.05)

    def test_run_with_timeout_matches_untimed_results(self):
        server = small_cluster()
        executor = BatchExecutor(server)
        goals = [read_term("p(a, X)"), read_term("p(b, X)"), read_term("r(W)")]
        timed = executor.run(goals, timeout=30.0)
        untimed = executor.run(goals)
        assert [
            [str(c) for c in result.candidates] for result in timed.results
        ] == [
            [str(c) for c in result.candidates] for result in untimed.results
        ]
