"""The shared-memory result transport and worker fault tolerance.

PR 9 moves worker→parent result traffic off the pickled pipe onto a
ring of :class:`multiprocessing.shared_memory` slabs (see
:mod:`repro.parallel.shm`).  The contract is the same as PR 8's: bit
identity with the threaded cluster — candidates element-wise, full
stats tuple — for every goal, mode, and mutation.  This suite drives
the shm transport differentially against both the pipe transport and
the threaded reference, forces the pipe fallback with absurdly small
slots, and proves the respawn path by killing a worker mid-traffic.
"""

import dataclasses
import os
import pickle
import signal
import time

import pytest

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.crs import SearchMode
from repro.obs import Instrumentation
from repro.parallel import ProcessShardedRetrievalServer
from repro.parallel.shm import encode_result, is_shm_ref
from repro.terms import Atom, Clause, Struct, Var, read_term

PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(a, d). edge(d, e).
path(X, Y) :- edge(X, Y).
likes(mary, wine). likes(john, X) :- likes(X, wine).
wide(a, b, c, d, e, f, g, h, i, j, k, l, m, n).
"""

GOALS = [
    "edge(a, X)",
    "edge(X, Y)",
    "path(a, Z)",
    "likes(X, wine)",
    "wide(a, B, c, D, e, F, g, H, i, J, k, L, m, N)",
]


def fingerprint(result):
    return (
        [str(c) for c in result.candidates],
        dataclasses.astuple(result.stats),
    )


def build_process(transport="shm", obs=None, **kwargs):
    server = ProcessShardedRetrievalServer(
        3,
        ShardingPolicy.PREDICATE,
        result_transport=transport,
        obs=obs if obs is not None else Instrumentation(),
        **kwargs,
    )
    server.consult_text(PROGRAM)
    server.start()
    return server


@pytest.fixture(scope="module")
def transport_trio():
    """Threaded reference + both process transports over one program."""
    threaded = ShardedRetrievalServer(3, ShardingPolicy.PREDICATE)
    threaded.consult_text(PROGRAM)
    shm = build_process("shm")
    pipe = build_process("pipe")
    yield threaded, shm, pipe
    shm.close()
    pipe.close()


class TestTransportIdentity:
    def test_shm_equals_pipe_equals_threaded(self, transport_trio):
        threaded, shm, pipe = transport_trio
        for goal_text in GOALS:
            goal = read_term(goal_text)
            for mode in [None, *SearchMode]:
                expected = fingerprint(threaded.retrieve(goal, mode=mode))
                assert fingerprint(shm.retrieve(goal, mode=mode)) == (
                    expected
                ), (goal_text, mode, "shm")
                assert fingerprint(pipe.retrieve(goal, mode=mode)) == (
                    expected
                ), (goal_text, mode, "pipe")

    def test_retrieve_batch_identity(self, transport_trio):
        threaded, shm, pipe = transport_trio
        goals = [read_term(text) for text in GOALS]
        expected = [fingerprint(r) for r in threaded.retrieve_batch(goals)]
        assert [fingerprint(r) for r in shm.retrieve_batch(goals)] == expected
        assert [fingerprint(r) for r in pipe.retrieve_batch(goals)] == expected

    def test_slab_traffic_is_counted(self, transport_trio):
        _, shm, pipe = transport_trio
        before = shm.obs.registry.total("parallel.shm.results")
        shm.retrieve(read_term("edge(a, X)"))
        after = shm.obs.registry.total("parallel.shm.results")
        assert after > before
        assert shm.obs.registry.total("parallel.shm.bytes") > 0
        # The pipe transport never touches a slab.
        assert pipe.obs.registry.total("parallel.shm.results") == 0

    def test_mutations_stay_identical_over_shm(self):
        threaded = ShardedRetrievalServer(3, ShardingPolicy.PREDICATE)
        threaded.consult_text(PROGRAM)
        process = build_process("shm")
        try:
            steps = [
                ("assertz", Clause(Struct("edge", (Atom("e"), Atom("f"))))),
                ("asserta", Clause(Struct("edge", (Atom("zz"), Atom("a"))))),
                ("retract", Clause(Struct("edge", (Atom("a"), Var("Q"))))),
                ("assertz", Clause(Struct("fresh", (Atom("n1"),)))),
            ]
            for op, clause in steps:
                if op == "assertz":
                    threaded.add_clause(clause)
                    process.add_clause(clause)
                elif op == "asserta":
                    threaded.asserta(clause)
                    process.asserta(clause)
                else:
                    removed_t = threaded.retract_matching(clause)
                    removed_p = process.retract_matching(clause)
                    assert str(removed_t) == str(removed_p)
                for goal_text in ("edge(X, Y)", "fresh(X)"):
                    goal = read_term(goal_text)
                    try:
                        expected = fingerprint(threaded.retrieve(goal))
                    except Exception as exc:
                        with pytest.raises(type(exc)):
                            process.retrieve(goal)
                        continue
                    assert fingerprint(process.retrieve(goal)) == expected
        finally:
            process.close()


class TestSlabFallback:
    def test_tiny_slots_fall_back_to_the_pipe(self):
        """Payloads that outgrow a slot still answer, over the pipe."""
        threaded = ShardedRetrievalServer(3, ShardingPolicy.PREDICATE)
        threaded.consult_text(PROGRAM)
        process = build_process("shm", shm_slot_bytes=8)
        try:
            for goal_text in GOALS:
                goal = read_term(goal_text)
                expected = fingerprint(threaded.retrieve(goal))
                assert fingerprint(process.retrieve(goal)) == expected
            assert process.obs.registry.total("parallel.shm.fallbacks") > 0
            assert process.obs.registry.total("parallel.shm.results") == 0
        finally:
            process.close()


class TestWorkerRespawn:
    def kill_one_worker(self, process):
        handle = next(iter(process._handles.values()))
        os.kill(handle.process.pid, signal.SIGKILL)
        handle.process.join(timeout=5.0)
        # Give the pipe a moment to report EOF on the parent side.
        deadline = time.monotonic() + 5.0
        while handle.process.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        return handle.shard_id

    def test_killed_worker_respawns_and_answers(self):
        threaded = ShardedRetrievalServer(3, ShardingPolicy.PREDICATE)
        threaded.consult_text(PROGRAM)
        process = build_process("shm")
        try:
            goals = [read_term(text) for text in GOALS]
            expected = [fingerprint(threaded.retrieve(g)) for g in goals]
            assert [fingerprint(process.retrieve(g)) for g in goals] == (
                expected
            )
            killed = self.kill_one_worker(process)
            # Every goal still answers bit-identically: the dead
            # worker's shard respawns transparently on first use.
            assert [fingerprint(process.retrieve(g)) for g in goals] == (
                expected
            )
            assert process.obs.registry.total(
                "parallel.worker.restarts"
            ) == 1
            replacement = process._handles[killed]
            assert replacement.process.is_alive()
            # Batches work against the replacement too.
            batch = [fingerprint(r) for r in process.retrieve_batch(goals)]
            assert batch == [fingerprint(r) for r in threaded.retrieve_batch(goals)]
        finally:
            process.close()

    def test_mutations_survive_a_respawn(self):
        """The replacement re-exports from the parent's mutated shard."""
        threaded = ShardedRetrievalServer(3, ShardingPolicy.PREDICATE)
        threaded.consult_text(PROGRAM)
        process = build_process("shm")
        try:
            clause = Clause(Struct("edge", (Atom("post"), Atom("kill"))))
            threaded.add_clause(clause)
            process.add_clause(clause)
            self.kill_one_worker(process)
            goal = read_term("edge(X, Y)")
            assert fingerprint(process.retrieve(goal)) == fingerprint(
                threaded.retrieve(goal)
            )
        finally:
            process.close()


class TestCodec:
    def test_merged_results_refuse_the_slab(self):
        """A result with no address list cannot ride the slab."""
        from repro.crs import RetrievalResult, RetrievalStats, SearchMode

        result = RetrievalResult(
            goal=read_term("p(a)"),
            candidates=[],
            stats=RetrievalStats(mode=SearchMode.FS1_ONLY, residency="main"),
            addresses=None,
        )
        assert encode_result(result, kb=None) is None

    def test_is_shm_ref_discriminates(self):
        assert is_shm_ref(("__shm__", 0, 128))
        assert not is_shm_ref(("__shm__", 0))
        assert not is_shm_ref(["__shm__", 0, 128])
        assert not is_shm_ref(pickle.dumps(("__shm__", 0, 128)))
