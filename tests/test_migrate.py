"""Live migration and replica resync: exact cuts, catch-up, rollback.

The engine-level tests build :class:`~repro.cluster.fleet.ClusterNode`
shells around in-process engines — snapshot, catch-up, and resync never
touch a socket, so the interleavings are driven exactly.  The
``migrate_shard`` tests run a real fleet end to end: sockets, manifest
flip, drain, and client re-routing.
"""

import threading

import pytest

from repro.cluster import (
    Fleet,
    FleetClient,
    MigrationError,
    ShardedRetrievalServer,
    WritesFrozen,
    migrate_shard,
    resync_replica,
)
from repro.cluster.fleet import ClusterNode
from repro.cluster.migrate import catch_up, snapshot_node
from repro.net import RetrievalClient
from repro.storage import kb_fingerprint, load_kb
from repro.terms import Atom, Clause, Struct


def fact(name: str, *args: str) -> Clause:
    return Clause(head=Struct(name, tuple(Atom(a) for a in args)), body=())


def engine_node(shard_id: int = 0, **engine_opts) -> ClusterNode:
    """A socketless node: just the engine, for cut/catch-up tests."""
    return ClusterNode(
        shard_id=shard_id, engine=ShardedRetrievalServer(1, **engine_opts)
    )


def prints(node: ClusterNode):
    return kb_fingerprint(node.engine.shards[0].kb)


class TestSnapshotCut:
    def test_snapshot_seq_matches_content(self, tmp_path):
        node = engine_node()
        node.engine.consult_text("p(a). p(b).")
        seq = snapshot_node(node, tmp_path)
        assert seq == node.engine.version
        # Writes after the cut do not retroactively enter the files.
        node.engine.assertz(fact("p", "late"))
        loaded = kb_fingerprint(load_kb(tmp_path))
        assert loaded["p/1"] == ["p(a).", "p(b)."]

    def test_snapshot_excludes_nothing_before_the_cut(self, tmp_path):
        node = engine_node()
        node.engine.consult_text("p(a).")
        node.engine.assertz(fact("p", "b"))
        snapshot_node(node, tmp_path)
        assert kb_fingerprint(load_kb(tmp_path)) == prints(node)

    def test_snapshot_under_concurrent_writers_is_a_consistent_cut(
        self, tmp_path
    ):
        """Hammer the engine from a thread while snapshotting: every
        snapshot + delta-from-its-seq must reconstruct the final state
        exactly.  Functor names chosen to exercise the stem-mangling
        (collision) paths of the clause-file writer too."""
        node = engine_node()
        node.engine.assertz(fact("pred", "seed"))
        node.engine.assertz(fact("Pred", "seed"))  # stem-collides w/ pred
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                node.engine.assertz(fact("pred" if i % 2 else "Pred", f"w{i}"))
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            cuts = []
            for attempt in range(5):
                snapdir = tmp_path / f"cut{attempt}"
                seq = snapshot_node(node, snapdir)
                cuts.append((seq, snapdir))
        finally:
            stop.set()
            thread.join()
        for seq, snapdir in cuts:
            target = engine_node()
            target.engine.adopt_kb(load_kb(snapdir))
            catch_up(node, target, seq)
            assert prints(target) == prints(node)


class TestCatchUp:
    def test_delta_replays_interleaved_writes(self, tmp_path):
        source = engine_node()
        source.engine.consult_text("p(a).")
        seq = snapshot_node(source, tmp_path)
        source.engine.assertz(fact("p", "b"))
        source.engine.asserta(fact("p", "front"))
        source.engine.retract_matching(fact("p", "a"))
        target = engine_node()
        target.engine.adopt_kb(load_kb(tmp_path))
        new_seq = catch_up(source, target, seq)
        assert new_seq == source.engine.version
        assert prints(target) == prints(source)
        assert prints(target)["p/1"] == ["p(front).", "p(b)."]

    def test_catch_up_converges_over_multiple_rounds(self):
        source = engine_node()
        source.engine.consult_text("p(a).")
        target = engine_node()
        target.engine.adopt_kb(load_kb_like(source))
        seq = source.engine.version

        real = source.engine

        class TrickleSource:
            """Lands one more write during each of the first 3 rounds."""

            def __init__(self):
                self.rounds = 0

            def mutations_since(self, since):
                if self.rounds < 3:
                    real.assertz(fact("p", f"mid{self.rounds}"))
                    self.rounds += 1
                return real.mutations_since(since)

            def __getattr__(self, name):
                return getattr(real, name)

        source.engine = TrickleSource()
        catch_up(source, target, seq)
        source.engine = real
        assert prints(target) == prints(source)

    def test_catch_up_gives_up_on_an_unbounded_writer(self):
        source = engine_node()
        source.engine.consult_text("p(a).")
        target = engine_node()
        target.engine.adopt_kb(load_kb_like(source))
        seq = source.engine.version

        real = source.engine

        class FireHose:
            def mutations_since(self, since):
                real.assertz(fact("p", f"x{real.version}"))
                return real.mutations_since(since)

            def __getattr__(self, name):
                return getattr(real, name)

        source.engine = FireHose()
        with pytest.raises(MigrationError, match="catch-up rounds"):
            catch_up(source, target, seq)


def load_kb_like(node: ClusterNode):
    """Clone a node's KB through the real save/load path."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="clare-test-") as tmp:
        snapshot_node(node, tmp)
        return load_kb(tmp)


class TestResync:
    def test_resync_rebuilds_from_peer(self, tmp_path):
        peer = engine_node()
        peer.engine.consult_text("p(a). p(b). q(c).")
        peer.engine.assertz(fact("p", "d"))
        stale = engine_node()
        resync_replica(peer, stale, tmp_path)
        assert prints(stale) == prints(peer)

    def test_resync_refuses_a_serving_target(self, tmp_path):
        peer, stale = engine_node(), engine_node()
        stale.alive = True
        with pytest.raises(MigrationError, match="stopped"):
            resync_replica(peer, stale, tmp_path)

    def test_resync_refuses_a_shard_mismatch(self, tmp_path):
        with pytest.raises(MigrationError, match="shard"):
            resync_replica(engine_node(0), engine_node(1), tmp_path)

    def test_overflowed_delta_forces_a_fresh_snapshot(
        self, tmp_path, monkeypatch
    ):
        """A flood between snapshot and catch-up evicts the delta from
        the capped log; resync must re-snapshot, not replay a gap."""
        from repro.cluster import migrate as migrate_mod

        peer = engine_node(mutation_log_size=4)
        peer.engine.consult_text("p(a).")
        stale = engine_node()
        real_snapshot = migrate_mod.snapshot_node
        floods = {"left": 1}

        def flooding_snapshot(node, directory):
            seq = real_snapshot(node, directory)
            if floods["left"]:
                floods["left"] -= 1
                for i in range(10):  # > log capacity: the delta is gone
                    node.engine.assertz(fact("p", f"flood{i}"))
            return seq

        monkeypatch.setattr(migrate_mod, "snapshot_node", flooding_snapshot)
        resync_replica(peer, stale, tmp_path)
        assert prints(stale) == prints(peer)
        assert (tmp_path / "snapshot-0").is_dir()
        assert (tmp_path / "snapshot-1").is_dir()

    def test_persistent_overflow_surfaces_migration_error(
        self, tmp_path, monkeypatch
    ):
        from repro.cluster import migrate as migrate_mod

        peer = engine_node(mutation_log_size=4)
        peer.engine.consult_text("p(a).")
        stale = engine_node()
        real_snapshot = migrate_mod.snapshot_node

        def always_flooding(node, directory):
            seq = real_snapshot(node, directory)
            for i in range(10):
                node.engine.assertz(fact("p", f"f{node.engine.version}_{i}"))
            return seq

        monkeypatch.setattr(migrate_mod, "snapshot_node", always_flooding)
        with pytest.raises(MigrationError, match="mutation log"):
            resync_replica(peer, stale, tmp_path)


class TestWriteIdempotency:
    def test_duplicate_assert_applies_once(self):
        node = engine_node()
        node.engine.consult_text("p(a).")
        node.engine.assertz(fact("p", "b"), write_id="c:1")
        node.engine.assertz(fact("p", "b"), write_id="c:1")
        assert prints(node)["p/1"].count("p(b).") == 1

    def test_duplicate_retract_reports_the_first_removal(self):
        node = engine_node()
        node.engine.consult_text("p(a). p(a).")
        first = node.engine.retract_matching(fact("p", "a"), write_id="c:2")
        second = node.engine.retract_matching(fact("p", "a"), write_id="c:2")
        assert str(first) == "p(a)."
        assert str(second) == str(first)
        # The duplicate delivery must not have removed the second copy.
        assert prints(node)["p/1"] == ["p(a)."]

    def test_delta_replay_dedupes_a_rerouted_write(self, tmp_path):
        """The double-apply race, distilled: a write lands on the source
        (and its log) after the snapshot cut, the client re-routes the
        *same* write directly to the target, and the catch-up delta then
        replays the source's copy — the target must hold exactly one."""
        source, target = engine_node(), engine_node()
        source.engine.consult_text("p(a).")
        seq = snapshot_node(source, tmp_path)
        target.engine.adopt_kb(load_kb(tmp_path))
        source.engine.assertz(fact("p", "raced"), write_id="client:7")
        # The client's re-route arrives at the target first...
        target.engine.assertz(fact("p", "raced"), write_id="client:7")
        # ...and the delta replay carries the same stamped write again.
        catch_up(source, target, seq)
        assert prints(target)["p/1"].count("p(raced).") == 1
        assert prints(target) == prints(source)

    def test_snapshot_carries_the_write_id_memo(self, tmp_path):
        """A write already *inside* the snapshot dedupes a re-route too:
        the applied-id memo travels with the clause files."""
        source, target = engine_node(), engine_node()
        source.engine.consult_text("p(a).")
        source.engine.assertz(fact("p", "early"), write_id="client:9")
        resync_replica(source, target, tmp_path)
        target.engine.assertz(fact("p", "early"), write_id="client:9")
        assert prints(target)["p/1"].count("p(early).") == 1


class TestWriteFreeze:
    def test_frozen_engine_refuses_mutations_without_applying(self):
        node = engine_node()
        node.engine.consult_text("p(a).")
        node.engine.freeze_writes()
        with pytest.raises(WritesFrozen):
            node.engine.assertz(fact("p", "b"))
        with pytest.raises(WritesFrozen):
            node.engine.retract_matching(fact("p", "a"))
        assert prints(node)["p/1"] == ["p(a)."]
        node.engine.thaw_writes()
        node.engine.assertz(fact("p", "b"))
        assert "p(b)." in prints(node)["p/1"]

    def test_freeze_is_a_quiescence_barrier(self):
        """Once freeze_writes() returns, the mutation log is final:
        every concurrent writer either landed (and is logged) before
        the freeze or was refused — never logged afterwards."""
        node = engine_node()
        node.engine.consult_text("p(a).")
        before = node.engine.version
        outcomes = []
        barrier = threading.Barrier(9)

        def writer(i):
            barrier.wait()
            try:
                node.engine.assertz(fact("p", f"w{i}"))
                outcomes.append("landed")
            except WritesFrozen:
                outcomes.append("refused")

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        node.engine.freeze_writes()
        version_at_freeze = node.engine.version
        for thread in threads:
            thread.join()
        assert node.engine.version == version_at_freeze
        assert len(outcomes) == 8
        assert outcomes.count("landed") == version_at_freeze - before


PROGRAM = "p(a). p(b). q(c). q(d)."


class TestMigrateShard:
    def test_live_migration_end_to_end(self, tmp_path):
        with Fleet(PROGRAM, num_shards=2, replicas=2) as fleet:
            client = FleetClient(fleet.manifest, fleet.router)
            with client:
                source = fleet.manifest.replicas_for(0)[0]
                before_version = fleet.manifest.version
                target = migrate_shard(
                    fleet, 0, source, tmp_path, verify=True
                )
                assert target != source
                manifest = fleet.manifest
                assert manifest.version == before_version + 1
                assert target in manifest.replicas_for(0)
                assert source not in manifest.replicas_for(0)
                assert source not in fleet.nodes
                assert fleet.nodes[target].alive
                # A client still on the old manifest: reads fail over
                # off the drained source transparently...
                got = client.retrieve(Struct("p", (Atom("a"),)))
                assert [str(c) for c in got.candidates] == ["p(a)."]
                # ...and a stale-stamped write is refused, refreshed,
                # and re-routed onto the new placement.
                client.assertz(fact("p", "post_move"))
                assert client.manifest.version == manifest.version
                sweep = client.retrieve(Struct("p", (Atom("post_move"),)))
                assert [str(c) for c in sweep.candidates] == ["p(post_move)."]

    def test_migration_carries_post_snapshot_writes(self, tmp_path):
        """Writes landing between snapshot and flip arrive via delta."""
        with Fleet(PROGRAM, num_shards=1, replicas=2) as fleet:
            client = FleetClient(fleet.manifest, fleet.router)
            with client:
                client.assertz(fact("p", "before_move"))
                source = fleet.manifest.replicas_for(0)[0]
                target = migrate_shard(
                    fleet, 0, source, tmp_path, verify=True
                )
                survivor = fleet.nodes[target]
                assert "p(before_move)." in prints(survivor)["p/1"]

    def test_rejects_shard_mismatch_dead_source_and_unlisted(self, tmp_path):
        with Fleet(PROGRAM, num_shards=2, replicas=2) as fleet:
            shard0 = fleet.manifest.replicas_for(0)[0]
            shard1 = fleet.manifest.replicas_for(1)[0]
            with pytest.raises(MigrationError, match="serves shard"):
                migrate_shard(fleet, 0, shard1, tmp_path)
            fleet.kill(shard0)
            with pytest.raises(MigrationError, match="not serving"):
                migrate_shard(fleet, 0, shard0, tmp_path)
            victim = fleet.manifest.replicas_for(0)[1]
            fleet.holder.flip(fleet.manifest.without_replica(0, victim))
            with pytest.raises(MigrationError, match="not in the manifest"):
                migrate_shard(fleet, 0, victim, tmp_path)

    def test_failed_migration_rolls_the_target_back(
        self, tmp_path, monkeypatch
    ):
        from repro.cluster import migrate as migrate_mod

        with Fleet(PROGRAM, num_shards=1, replicas=1) as fleet:
            source = fleet.manifest.replicas_for(0)[0]
            version = fleet.manifest.version
            nodes_before = set(fleet.nodes)

            def boom(*args, **kwargs):
                raise RuntimeError("simulated snapshot failure")

            monkeypatch.setattr(migrate_mod, "_snapshot_into", boom)
            with pytest.raises(RuntimeError, match="simulated"):
                migrate_shard(fleet, 0, source, tmp_path)
            # No manifest flip, no orphaned half-built node.
            assert fleet.manifest.version == version
            assert set(fleet.nodes) == nodes_before
            assert fleet.nodes[source].alive

    def test_failed_migration_leaves_no_replica_frozen(
        self, tmp_path, monkeypatch
    ):
        """An abort after the freeze must thaw everything it froze."""
        from repro.cluster import migrate as migrate_mod

        with Fleet(PROGRAM, num_shards=1, replicas=2) as fleet:
            source = fleet.manifest.replicas_for(0)[0]

            def frozen_boom(source_node, target_node, seq):
                raise RuntimeError("simulated delta failure")

            monkeypatch.setattr(migrate_mod, "catch_up", frozen_boom)
            with pytest.raises(RuntimeError, match="simulated"):
                migrate_shard(fleet, 0, source, tmp_path)
            for address in fleet.manifest.replicas_for(0):
                assert not fleet.nodes[address].engine.writes_frozen

    def test_rerouted_write_does_not_double_apply(self, tmp_path):
        """The reviewed flip race, end to end: the same logical write
        reaches the target both inside the migrated state and as a
        direct client delivery (a post-flip re-route of a write the
        source had already accepted); the target must hold one copy."""
        with Fleet(PROGRAM, num_shards=1, replicas=2) as fleet:
            client = FleetClient(fleet.manifest, fleet.router)
            with client:
                client.assertz(fact("p", "racer"))
            source = fleet.manifest.replicas_for(0)[0]
            record = next(
                r for r in fleet.nodes[source].engine._mutation_log
                if r.clause is not None and str(r.clause) == "p(racer)."
            )
            assert record.write_id  # fleet writes are stamped
            target = migrate_shard(fleet, 0, source, tmp_path, verify=True)
            host, _, port = target.rpartition(":")
            with RetrievalClient(host, int(port)) as direct:
                direct.mutate(
                    "assertz", fact("p", "racer"), write_id=record.write_id
                )
            survivor = fleet.nodes[target]
            assert prints(survivor)["p/1"].count("p(racer).") == 1

    def test_target_is_complete_the_moment_it_is_readable(self, tmp_path):
        """The flip happens only after the final delta: at every
        manifest version that lists the target, the target already
        holds everything the source acknowledged."""
        with Fleet(PROGRAM, num_shards=1, replicas=2) as fleet:
            client = FleetClient(fleet.manifest, fleet.router)
            with client:
                client.assertz(fact("p", "acked_before_move"))
            source = fleet.manifest.replicas_for(0)[0]
            holder = fleet.holder
            original_flip = holder.flip
            seen_at_flip = {}

            def checking_flip(manifest):
                new_address = (
                    set(manifest.replicas_for(0))
                    - set(holder.current.replicas_for(0))
                )
                for address in new_address:
                    seen_at_flip[address] = prints(fleet.nodes[address])
                return original_flip(manifest)

            holder.flip = checking_flip
            try:
                target = migrate_shard(fleet, 0, source, tmp_path)
            finally:
                holder.flip = original_flip
            assert target in seen_at_flip
            assert "p(acked_before_move)." in seen_at_flip[target]["p/1"]

    def test_migration_under_concurrent_client_writes(self, tmp_path):
        """Writes racing the snapshot, freeze, and flip: no acknowledged
        write may be lost from a trusted replica, and *no* replica may
        hold a duplicate (the double-apply race would show up here)."""
        with Fleet(PROGRAM, num_shards=1, replicas=2) as fleet:
            client = FleetClient(fleet.manifest, fleet.router)
            with client:
                source = fleet.manifest.replicas_for(0)[0]
                acked: list[Clause] = []
                stop = threading.Event()

                def writer():
                    i = 0
                    while not stop.is_set() and i < 300:
                        clause = fact("p", f"c{i}")
                        i += 1
                        try:
                            client.assertz(clause)
                        except Exception:
                            continue
                        acked.append(clause)

                thread = threading.Thread(target=writer)
                thread.start()
                try:
                    target = migrate_shard(fleet, 0, source, tmp_path)
                finally:
                    stop.set()
                    thread.join()
                assert acked
                replicas = fleet.manifest.replicas_for(0)
                assert target in replicas
                stale = client.stale_addresses
                books = {
                    address: prints(fleet.nodes[address])["p/1"]
                    for address in replicas
                }
                for clause in acked:
                    text = str(clause)
                    for address in replicas:
                        copies = books[address].count(text)
                        assert copies <= 1, (text, address)
                        if address not in stale:
                            assert copies == 1, (text, address)


class TestFleetClientConsistency:
    def test_writes_ride_out_a_freeze_window(self):
        """A write hitting a frozen replica group backs off and retries
        instead of failing — and frozen refusals, having provably
        applied nothing, do not stale-mark anybody."""
        with Fleet(PROGRAM, num_shards=1, replicas=2) as fleet:
            nodes = [
                fleet.nodes[a] for a in fleet.manifest.replicas_for(0)
            ]
            for node in nodes:
                node.engine.freeze_writes()
            waits = []

            def sleep_then_thaw(seconds):
                waits.append(seconds)
                for node in nodes:
                    node.engine.thaw_writes()

            client = FleetClient(
                fleet.manifest, fleet.router, sleep=sleep_then_thaw
            )
            with client:
                client.assertz(fact("p", "thawed"))
                assert waits  # the freeze was actually hit and waited out
                assert not client.stale_addresses
                for node in nodes:
                    assert "p(thawed)." in prints(node)["p/1"]

    def test_reads_from_a_fully_stale_shard_are_flagged_degraded(self):
        with Fleet(PROGRAM, num_shards=1, replicas=2) as fleet:
            client = FleetClient(fleet.manifest, fleet.router)
            with client:
                goal = Struct("p", (Atom("a"),))
                assert client.retrieve(goal).stats.degraded is False
                for address in fleet.manifest.replicas_for(0):
                    client.mark_stale(address)
                degraded = client.retrieve(goal)
                assert degraded.stats.degraded is True
                # Degraded availability still answers.
                assert [str(c) for c in degraded.candidates] == ["p(a)."]
                client.clear_stale(fleet.manifest.replicas_for(0)[0])
                assert client.retrieve(goal).stats.degraded is False

    def test_extra_clients_are_pruned_and_closed(self):
        closed = []

        with Fleet(PROGRAM, num_shards=1, replicas=2) as fleet:
            client = FleetClient(fleet.manifest, fleet.router)

            class TrackingFailover(client._failover_cls):
                def close(self):
                    closed.append(self)
                    super().close()

            client._failover_cls = TrackingFailover
            with client:
                victim = fleet.manifest.replicas_for(0)[1]
                # Stale-marking evicts the address from the read set, so
                # write fan-out needs a one-address extra client for it.
                client.mark_stale(victim)
                client.assertz(fact("p", "via_extra"))
                assert victim in client._extra_clients
                extra = client._extra_clients[victim]
                # A manifest that no longer lists the address prunes
                # (and closes) its extra client.
                client.adopt_manifest(
                    fleet.manifest.without_replica(0, victim)
                )
                assert victim not in client._extra_clients
                assert extra in closed
            assert client._extra_clients == {}
