"""Tests for knowledge-base persistence (save/load directories)."""

import pytest

from repro.engine import PrologMachine
from repro.storage import (
    KnowledgeBase,
    PersistenceError,
    Residency,
    load_kb,
    save_kb,
)
from repro.scw import CodewordScheme
from repro.terms import read_term, term_to_string

PROGRAM = """
parent(tom, bob). parent(bob, ann).
grand(X, Z) :- parent(X, Y), parent(Y, Z).
likes(tom, [fishing, 'real ale', f(1, 2.5)]).
"""


@pytest.fixture
def saved_dir(tmp_path):
    kb = KnowledgeBase(scheme=CodewordScheme(width=64, bits_per_key=2))
    kb.consult_text(PROGRAM, module="family")
    kb.module("family").pin(Residency.DISK)
    save_kb(kb, tmp_path / "kbdir")
    return tmp_path / "kbdir"


class TestSave:
    def test_files_written(self, saved_dir):
        names = {p.name for p in saved_dir.iterdir()}
        assert "manifest.txt" in names
        assert "symbols.bin" in names
        assert "parent_2.clauses" in names
        assert "parent_2.index" in names
        assert "grand_2.clauses" in names

    def test_clause_file_bytes_identical(self, saved_dir):
        kb = KnowledgeBase(scheme=CodewordScheme(width=64, bits_per_key=2))
        kb.consult_text(PROGRAM, module="family")
        expected = kb.store(("parent", 2)).clause_file.to_bytes()
        assert (saved_dir / "parent_2.clauses").read_bytes() == expected

    def test_odd_predicate_names(self, tmp_path):
        kb = KnowledgeBase()
        kb.consult_text("'my pred!'(1). 'my pred!'(2).")
        save_kb(kb, tmp_path / "odd")
        restored = load_kb(tmp_path / "odd")
        assert len(restored.clauses(("my pred!", 1))) == 2


class TestLoad:
    def test_roundtrip_clauses(self, saved_dir):
        kb = load_kb(saved_dir)
        assert set(kb.predicates()) == {
            ("parent", 2),
            ("grand", 2),
            ("likes", 2),
        }
        heads = [str(c.head) for c in kb.clauses(("parent", 2))]
        assert heads == ["parent(tom,bob)", "parent(bob,ann)"]
        rule = kb.clauses(("grand", 2))[0]
        assert not rule.is_fact
        assert len(rule.body) == 2

    def test_roundtrip_modules_and_pins(self, saved_dir):
        kb = load_kb(saved_dir)
        assert kb.store(("parent", 2)).module_name == "family"
        assert kb.module("family").pinned_residency == Residency.DISK
        assert kb.residency(("parent", 2)) == Residency.DISK

    def test_roundtrip_scheme(self, saved_dir):
        kb = load_kb(saved_dir)
        assert kb.scheme == CodewordScheme(width=64, bits_per_key=2)

    def test_queries_after_load(self, saved_dir):
        kb = load_kb(saved_dir)
        kb.sync_to_disk()
        machine = PrologMachine(kb)
        answers = [
            term_to_string(s["Z"]) for s in machine.solve_text("grand(tom, Z)")
        ]
        assert answers == ["ann"]

    def test_complex_terms_survive(self, saved_dir):
        kb = load_kb(saved_dir)
        clause = kb.clauses(("likes", 2))[0]
        assert str(clause.head) == "likes(tom,[fishing,'real ale',f(1,2.5)])"

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_kb(tmp_path)

    def test_missing_clause_file(self, saved_dir):
        (saved_dir / "parent_2.clauses").unlink()
        with pytest.raises(PersistenceError):
            load_kb(saved_dir)

    def test_save_load_save_stable(self, saved_dir, tmp_path):
        kb = load_kb(saved_dir)
        save_kb(kb, tmp_path / "again")
        first = (saved_dir / "parent_2.clauses").read_bytes()
        second = (tmp_path / "again" / "parent_2.clauses").read_bytes()
        assert first == second

    def test_updates_after_load(self, saved_dir):
        kb = load_kb(saved_dir)
        kb.assertz(read_term("parent(ann, joe)"))
        assert len(kb.clauses(("parent", 2))) == 3


class TestStemCollisions:
    """File-stem collisions must disambiguate, not silently overwrite."""

    def test_case_only_names_get_distinct_stems(self, tmp_path):
        # p/1 vs 'P'/1 escape to stems differing only by case — a real
        # collision on case-insensitive filesystems.  The writer must
        # assign distinct stems and the manifest must round-trip both.
        kb = KnowledgeBase()
        kb.consult_text("p(1). p(2). 'P'(a). 'P'(b). 'P'(c).")
        save_kb(kb, tmp_path / "kb")
        manifest = (tmp_path / "kb" / "manifest.txt").read_text()
        stems = [
            line.split("\t")[4]
            for line in manifest.splitlines()
            if line.startswith("predicate\t")
        ]
        assert len(stems) == len(set(stems)) == 2
        assert len({stem.casefold() for stem in stems}) == 2

        restored = load_kb(tmp_path / "kb")
        assert len(restored.clauses(("p", 1))) == 2
        assert len(restored.clauses(("P", 1))) == 3
        heads = [str(c.head) for c in restored.clauses(("P", 1))]
        assert heads == ["'P'(a)", "'P'(b)", "'P'(c)"]

    def test_suffixed_stem_files_exist(self, tmp_path):
        kb = KnowledgeBase()
        kb.consult_text("p(1). 'P'(a).")
        written = save_kb(kb, tmp_path / "kb")
        clause_files = sorted(
            name for name in written if name.endswith(".clauses")
        )
        assert clause_files == ["P_1__2.clauses", "p_1.clauses"]
        for name in clause_files:
            assert (tmp_path / "kb" / name).exists()

    def test_same_name_different_arity_never_collides(self, tmp_path):
        kb = KnowledgeBase()
        kb.consult_text("p(1). p(1, 2). p(1, 2, 3).")
        save_kb(kb, tmp_path / "kb")
        restored = load_kb(tmp_path / "kb")
        assert set(restored.predicates()) == {("p", 1), ("p", 2), ("p", 3)}

    def test_duplicate_stem_manifest_rejected(self, tmp_path):
        # A directory written by a pre-collision-check saver: two
        # predicates point at one clause file.  Loading either image as
        # both would corrupt the KB, so the loader must refuse.
        kb = KnowledgeBase()
        kb.consult_text("p(1). q(2).")
        save_kb(kb, tmp_path / "kb")
        manifest_path = tmp_path / "kb" / "manifest.txt"
        lines = manifest_path.read_text().splitlines()
        rewritten = [
            line.replace("\tq_1", "\tp_1")
            if line.startswith("predicate\tq") else line
            for line in lines
        ]
        manifest_path.write_text("\n".join(rewritten) + "\n")
        with pytest.raises(PersistenceError, match="stem"):
            load_kb(tmp_path / "kb")

    def test_collision_roundtrip_preserves_clause_bytes(self, tmp_path):
        kb = KnowledgeBase()
        kb.consult_text("p(1). p(2). 'P'(a).")
        save_kb(kb, tmp_path / "kb")
        expected_p = kb.store(("p", 1)).clause_file.to_bytes()
        expected_upper = kb.store(("P", 1)).clause_file.to_bytes()
        assert (tmp_path / "kb" / "p_1.clauses").read_bytes() == expected_p
        assert (
            tmp_path / "kb" / "P_1__2.clauses"
        ).read_bytes() == expected_upper
