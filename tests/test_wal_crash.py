"""Crash-injection suite: SIGKILL the engine, recover, audit the promise.

Each case spawns ``wal_crash_runner.py`` in a subprocess with one crash
point armed (see :mod:`repro.storage.wal`): the process literally
SIGKILLs itself at a chosen durability boundary — mid-group-commit,
between WAL rotation and the snapshot ``CURRENT`` flip, and so on.  The
runner appends each mutation's ``write_id`` to an acks file (O_APPEND +
fsync) only *after* the engine acknowledged it, so the file is exactly
the set of promises made to the client.

The parent then recovers the store and checks the durability contract:

* every acked write survived (recovered state ⊇ acked prefix),
* the recovered state is a *contiguous prefix* of the mutation plan —
  at most the one in-flight unacked mutation past the acked prefix may
  appear, nothing is skipped or reordered,
* re-delivering the surviving mutations with their original write_ids
  changes nothing (idempotency memo recovered intact),
* the store stays usable: new writes append, compaction completes.
"""

from __future__ import annotations

import pathlib
import signal
import subprocess
import sys

import pytest

from repro.cluster import ShardedRetrievalServer
from repro.storage import DurabilityOptions, kb_fingerprint
from repro.terms import read_term

from .wal_crash_runner import mutation_plan

RUNNER = pathlib.Path(__file__).with_name("wal_crash_runner.py")
COUNT = 12


def _run_to_crash(tmp_path, point: str, hits: int) -> list[str]:
    """Spawn the runner, wait for its SIGKILL, return the acked ids."""
    store = tmp_path / "store"
    acks = tmp_path / "acks.txt"
    proc = subprocess.run(
        [sys.executable, str(RUNNER), str(store), str(acks), point,
         str(hits), str(COUNT)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"runner survived point {point!r} (rc={proc.returncode}):\n"
        f"{proc.stdout}{proc.stderr}"
    )
    if not acks.exists():
        return []
    return acks.read_text(encoding="ascii").split()


def _oracle(prefix: int) -> ShardedRetrievalServer:
    """An in-memory engine after the plan's first ``prefix`` mutations."""
    engine = ShardedRetrievalServer(2, "predicate")
    for op, text, write_id in mutation_plan(COUNT)[:prefix]:
        term = read_term(text)
        if op == "assertz":
            engine.assertz(term, write_id=write_id)
        elif op == "asserta":
            engine.asserta(term, write_id=write_id)
        else:
            assert engine.retract_matching(term, write_id=write_id)
    return engine


def _fingerprint(engine) -> list[dict]:
    return [kb_fingerprint(shard.kb) for shard in engine.shards]


def _recover(tmp_path) -> ShardedRetrievalServer:
    return ShardedRetrievalServer(
        2,
        "predicate",
        durability=DurabilityOptions(
            directory=tmp_path / "store", auto_compact=False
        ),
    )


@pytest.mark.parametrize(
    ("point", "hits"),
    [
        ("wal.staged", 3),
        ("wal.staged", 9),
        ("wal.pre_fsync", 5),
        ("wal.post_fsync", 7),
    ],
)
def test_crash_mid_write_loses_no_acked_mutation(tmp_path, point, hits):
    acked = _run_to_crash(tmp_path, point, hits)
    plan_ids = [write_id for _, _, write_id in mutation_plan(COUNT)]
    # Acks are written in order by a single-threaded runner: a prefix.
    assert acked == plan_ids[: len(acked)]

    engine = _recover(tmp_path)
    try:
        applied = engine.applied_write_ids()
        # Contract 1: every promise kept.
        assert set(acked) <= set(applied)
        # Contract 2: the survivors are a contiguous prefix — the crash
        # can strand at most the single in-flight (unacked) mutation.
        assert applied == plan_ids[: len(applied)]
        assert len(acked) <= len(applied) <= len(acked) + 1
        assert engine.version == len(applied)
        assert _fingerprint(engine) == _fingerprint(_oracle(len(applied)))

        # Contract 3: re-delivery of every survivor is a no-op.
        before = _fingerprint(engine)
        version = engine.version
        for op, text, write_id in mutation_plan(COUNT)[: len(applied)]:
            term = read_term(text)
            if op == "assertz":
                engine.assertz(term, write_id=write_id)
            elif op == "asserta":
                engine.asserta(term, write_id=write_id)
            else:
                engine.retract_matching(term, write_id=write_id)
        assert engine.version == version
        assert _fingerprint(engine) == before

        # Contract 4: the store is fully usable — append and compact.
        engine.assertz(read_term("post_crash(ok)"))
        assert engine.compact() == version + 1
    finally:
        engine.close()

    # And a second recovery sees the post-crash write too.
    reopened = _recover(tmp_path)
    try:
        assert reopened.version == version + 1
    finally:
        reopened.close()


@pytest.mark.parametrize(
    "point", ["compact.rotated", "compact.synced", "compact.flipped"]
)
def test_crash_mid_compaction_loses_nothing(tmp_path, point):
    acked = _run_to_crash(tmp_path, point, 1)
    plan_ids = [write_id for _, _, write_id in mutation_plan(COUNT)]
    # Compaction points fire after every mutation acked.
    assert acked == plan_ids

    engine = _recover(tmp_path)
    try:
        assert engine.applied_write_ids() == plan_ids
        assert engine.version == COUNT
        assert _fingerprint(engine) == _fingerprint(_oracle(COUNT))
        # A fresh compaction completes over the half-finished leftovers.
        assert engine.compact() == COUNT
        assert engine.durable_store.snapshot_seq == COUNT
    finally:
        engine.close()

    recovered = _recover(tmp_path)
    try:
        assert recovered.version == COUNT
        assert _fingerprint(recovered) == _fingerprint(_oracle(COUNT))
    finally:
        recovered.close()


def test_double_crash_then_recover(tmp_path):
    """Crash during recovery-append after a first crash: still sound."""
    acked_first = _run_to_crash(tmp_path, "wal.post_fsync", 4)
    # Second run over the same store: recovery replays, then the fresh
    # mutations crash again at a later fsync.
    acks2 = tmp_path / "acks2.txt"
    proc = subprocess.run(
        [sys.executable, str(RUNNER), str(tmp_path / "store"), str(acks2),
         "wal.pre_fsync", "3", str(COUNT)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL
    engine = _recover(tmp_path)
    try:
        applied = engine.applied_write_ids()
        # Everything acked in round one survived two crashes; the ids
        # stay a plan prefix (round two redelivered the same plan and
        # the memo deduped the overlap).
        assert set(acked_first) <= set(applied)
        plan_ids = [write_id for _, _, write_id in mutation_plan(COUNT)]
        assert applied == plan_ids[: len(applied)]
        assert _fingerprint(engine) == _fingerprint(_oracle(len(applied)))
    finally:
        engine.close()
