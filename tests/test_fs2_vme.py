"""Tests for the VME memory-mapped window."""

import pytest

from repro.fs2 import (
    CLARE_BASE_ADDRESS,
    ControlRegister,
    OperationalMode,
    ResultMemory,
    WritableControlStore,
    assemble_search_program,
)
from repro.fs2.vme import (
    BusError,
    CONTROL_OFFSET,
    RM_OFFSET,
    VMEWindow,
    WCS_OFFSET,
)


@pytest.fixture
def window():
    return VMEWindow(ControlRegister(), WritableControlStore(), ResultMemory())


class TestControlThroughWindow:
    def test_write_control_register(self, window):
        window.write(CLARE_BASE_ADDRESS + CONTROL_OFFSET, 0b0000_0111)
        assert window.control.value & 0x07 == 0x07
        assert window.control.mode == OperationalMode.SET_QUERY

    def test_read_control_register(self, window):
        window.control.set_match_found(True)
        assert window.read(CLARE_BASE_ADDRESS + CONTROL_OFFSET) & 0x80

    def test_status_bit_protected_from_host(self, window):
        window.control.set_match_found(True)
        window.write(CLARE_BASE_ADDRESS + CONTROL_OFFSET, 0x00)
        assert window.read(CLARE_BASE_ADDRESS + CONTROL_OFFSET) & 0x80


class TestMicroprogrammingThroughWindow:
    def test_load_program_words(self, window):
        program = assemble_search_program()
        window.load_program_words(program.words)
        assert window.wcs.loaded
        # The first instruction reads back identically.
        first = window.wcs.fetch(0)
        assert first.encode() == program.words[0]

    def test_wcs_readback(self, window):
        window.write_block(
            CLARE_BASE_ADDRESS + WCS_OFFSET, (0xDEADBEEF).to_bytes(8, "little")
        )
        data = window.read_block(CLARE_BASE_ADDRESS + WCS_OFFSET, 8)
        assert int.from_bytes(data, "little") == 0xDEADBEEF


class TestResultMemoryThroughWindow:
    def test_read_captured_records(self, window):
        window.result.stream_record(b"hit-record")
        window.result.capture()
        data = window.read_block(CLARE_BASE_ADDRESS + RM_OFFSET, 10)
        assert data == b"hit-record"

    def test_second_slot_at_512(self, window):
        window.result.stream_record(b"first")
        window.result.capture()
        window.result.stream_record(b"second")
        window.result.capture()
        data = window.read_block(CLARE_BASE_ADDRESS + RM_OFFSET + 512, 6)
        assert data == b"second"


class TestBusErrors:
    def test_outside_window(self, window):
        with pytest.raises(BusError):
            window.read(CLARE_BASE_ADDRESS - 1)
        with pytest.raises(BusError):
            window.write(0x0000_0000, 1)

    def test_result_memory_not_writable(self, window):
        with pytest.raises(BusError):
            window.write(CLARE_BASE_ADDRESS + RM_OFFSET, 1)

    def test_byte_stores_only(self, window):
        with pytest.raises(BusError):
            window.write(CLARE_BASE_ADDRESS + CONTROL_OFFSET, 0x1FF)

    def test_query_memory_stores(self, window):
        from repro.fs2.vme import QUERY_OFFSET

        window.write_block(CLARE_BASE_ADDRESS + QUERY_OFFSET, b"\x08\x00\x00\x01")
        assert window.query_stream(4) == b"\x08\x00\x00\x01"
