"""Tests for symbol tables and compiled clause files."""

import pytest
from hypothesis import given, settings

from repro.pif import (
    MAX_RECORD_BYTES,
    ClauseFile,
    CompiledClause,
    PIFError,
    SymbolTable,
    compile_clause,
)
from repro.terms import Clause, clause_from_term, read_term
from tests.strategies import clause_heads


def parse_clause(text: str) -> Clause:
    return clause_from_term(read_term(text))


@pytest.fixture
def symbols():
    return SymbolTable()


class TestSymbolTable:
    def test_interning_idempotent(self, symbols):
        a = symbols.intern_atom("foo")
        b = symbols.intern_atom("foo")
        assert a == b
        assert len(symbols) == 1

    def test_distinct_offsets(self, symbols):
        assert symbols.intern_atom("a") != symbols.intern_atom("b")

    def test_floats_separate_namespace(self, symbols):
        atom_offset = symbols.intern_atom("1.0")
        float_offset = symbols.intern_float(1.0)
        assert atom_offset != float_offset

    def test_lookup(self, symbols):
        offset = symbols.intern_atom("hello")
        assert symbols.atom_name_at(offset) == "hello"
        f = symbols.intern_float(2.5)
        assert symbols.float_at(f).value == 2.5

    def test_kind_mismatch(self, symbols):
        offset = symbols.intern_atom("x")
        with pytest.raises(KeyError):
            symbols.float_at(offset)

    def test_missing_offset(self, symbols):
        with pytest.raises(KeyError):
            symbols.lookup(99)

    def test_serialisation_roundtrip(self, symbols):
        symbols.intern_atom("foo")
        symbols.intern_float(3.5)
        symbols.intern_atom("ünïcode")
        restored = SymbolTable.from_bytes(symbols.to_bytes())
        assert restored.atom_name_at(0) == "foo"
        assert restored.float_at(1).value == 3.5
        assert restored.atom_name_at(2) == "ünïcode"

    def test_contains(self, symbols):
        symbols.intern_atom("x")
        assert symbols.contains_atom("x")
        assert not symbols.contains_atom("y")


class TestCompileClause:
    def test_fact(self, symbols):
        compiled = compile_clause(parse_clause("p(a, b)"), symbols)
        assert compiled.is_fact
        assert compiled.indicator == ("p", 2)
        assert compiled.body_stream == b""

    def test_rule(self, symbols):
        compiled = compile_clause(parse_clause("p(X) :- q(X), r(X)"), symbols)
        assert not compiled.is_fact
        assert len(compiled.body_stream) > 0

    def test_record_roundtrip(self, symbols):
        original = compile_clause(parse_clause("p(f(X), [1|X])"), symbols)
        data = original.to_bytes()
        restored, offset = CompiledClause.from_bytes(data, ("p", 2))
        assert offset == len(data)
        assert restored == original

    def test_record_roundtrip_without_names(self, symbols):
        original = compile_clause(parse_clause("p(X, Y)"), symbols)
        data = original.to_bytes(include_names=False)
        restored, _ = CompiledClause.from_bytes(data, ("p", 2))
        assert restored.var_names == ()
        assert restored.head_stream == original.head_stream

    def test_oversized_record_rejected(self, symbols):
        big = ", ".join(f"atom{i}" for i in range(30))
        clause = parse_clause(f"p([{big}], [{big}], [{big}], [{big}], [{big}])")
        compiled = compile_clause(clause, symbols)
        with pytest.raises(PIFError):
            compiled.to_bytes()


class TestClauseFile:
    def test_append_preserves_order(self, symbols):
        cf = ClauseFile(("p", 1), symbols)
        cf.append(parse_clause("p(b)"))
        cf.append(parse_clause("p(a)"))
        cf.append(parse_clause("p(X) :- q(X)"))
        assert len(cf) == 3
        assert cf.decode_clause(0).head == read_term("p(b)")
        assert cf.decode_clause(1).head == read_term("p(a)")

    def test_wrong_indicator_rejected(self, symbols):
        cf = ClauseFile(("p", 1), symbols)
        with pytest.raises(ValueError):
            cf.append(parse_clause("q(a)"))
        with pytest.raises(ValueError):
            cf.append(parse_clause("p(a, b)"))

    def test_mixed_facts_and_rules(self, symbols):
        # Mixed relations are the point of the integrated approach.
        cf = ClauseFile(("p", 1), symbols)
        cf.append(parse_clause("p(a)"))
        cf.append(parse_clause("p(X) :- q(X)"))
        cf.append(parse_clause("p(b)"))
        decoded = [cf.decode_clause(i) for i in range(3)]
        assert decoded[0].is_fact
        assert not decoded[1].is_fact
        assert decoded[1].body == (read_term("q(X)"),)
        assert decoded[2].is_fact

    def test_rule_decode_roundtrip(self, symbols):
        cf = ClauseFile(("anc", 2), symbols)
        clause = parse_clause("anc(X, Z) :- parent(X, Y), anc(Y, Z)")
        cf.append(clause)
        decoded = cf.decode_clause(0)
        assert decoded.head == clause.head
        assert decoded.body == clause.body

    def test_shared_variable_head_body(self, symbols):
        cf = ClauseFile(("p", 2), symbols)
        cf.append(parse_clause("p(X, Y) :- q(Y, X)"))
        decoded = cf.decode_clause(0)
        assert decoded == parse_clause("p(X, Y) :- q(Y, X)")

    def test_addresses_and_bytes(self, symbols):
        cf = ClauseFile(("p", 1), symbols)
        cf.append(parse_clause("p(a)"))
        cf.append(parse_clause("p(f(b, c))"))
        image = cf.to_bytes()
        addresses = cf.record_addresses()
        assert addresses[0] == 0
        first_record = cf.record(0).to_bytes()
        assert addresses[1] == len(first_record)
        assert image[: len(first_record)] == first_record
        # Each record must fit one Result Memory slot.
        for index in range(len(cf)):
            assert len(cf.record(index).to_bytes()) <= MAX_RECORD_BYTES

    def test_source_clause_kept(self, symbols):
        cf = ClauseFile(("p", 1), symbols)
        clause = parse_clause("p(a)")
        cf.append(clause)
        assert cf.source_clause(0) == clause

    @settings(max_examples=100)
    @given(clause_heads(functor="p", arity=3))
    def test_compile_decode_roundtrip_property(self, head):
        symbols = SymbolTable()
        cf = ClauseFile(("p", 3), symbols)
        try:
            cf.append(Clause(head))
        except PIFError:
            return  # oversized record: correctly rejected
        assert cf.decode_clause(0).head == head
