"""Batched retrieval and the decoded-clause cache: same answers, less work.

``retrieve_batch`` (single engine and cluster) must be element-wise
indistinguishable from looping ``retrieve`` — identical candidate sets,
identical modelled stats — because the batch path only changes *how the
host executes* the scans, never what the simulated hardware is charged.
The decoded-clause cache likewise must be invisible except in the
``crs.decode_cache.*`` counters.
"""

import pytest

from repro.cluster import BatchExecutor, ShardedRetrievalServer
from repro.crs import ClauseRetrievalServer, SearchMode
from repro.obs import Instrumentation
from repro.storage import KnowledgeBase, Residency
from repro.terms import read_term

PROGRAM = (
    " ".join(f"fact(k{i % 7}, {i}, v{i % 3})." for i in range(48))
    + " fact(X, X, shared). rule(A, B, C) :- fact(A, B, C)."
)

GOALS = [
    "fact(k1, N, V)",
    "fact(K, 12, V)",
    "fact(A, B, C)",
    "fact(k2, N, v1)",
    "fact(k1, N, V)",  # repeat: exercises every cache layer
    "rule(k3, N, V)",
]

MODES = [
    None,
    SearchMode.SOFTWARE,
    SearchMode.FS1_ONLY,
    SearchMode.FS2_ONLY,
    SearchMode.BOTH,
]


def goal_terms():
    return [read_term(text) for text in GOALS]


def candidate_keys(result):
    return [str(clause.to_term()) for clause in result.candidates]


class TestServerBatch:
    def make_server(self, **kwargs) -> ClauseRetrievalServer:
        kb = KnowledgeBase()
        kb.consult_text(PROGRAM)
        return ClauseRetrievalServer(kb, **kwargs)

    @pytest.mark.parametrize("mode", MODES)
    def test_batch_matches_sequential(self, mode):
        batch_server = self.make_server()
        solo_server = self.make_server()
        batched = batch_server.retrieve_batch(goal_terms(), mode=mode)
        solo = [solo_server.retrieve(goal, mode=mode) for goal in goal_terms()]
        assert len(batched) == len(solo)
        for left, right in zip(batched, solo):
            assert candidate_keys(left) == candidate_keys(right)
            assert left.stats.mode == right.stats.mode
            assert left.stats.fs1_candidates == right.stats.fs1_candidates
            assert left.stats.final_candidates == right.stats.final_candidates
            assert left.stats.filter_time_s == pytest.approx(
                right.stats.filter_time_s
            )

    def test_batch_matches_sequential_on_disk(self):
        batch_server = self.make_server()
        solo_server = self.make_server()
        for server in (batch_server, solo_server):
            server.kb.module("user").pin(Residency.DISK)
            server.kb.sync_to_disk()
        batched = batch_server.retrieve_batch(goal_terms(), mode=SearchMode.BOTH)
        solo = [
            solo_server.retrieve(goal, mode=SearchMode.BOTH)
            for goal in goal_terms()
        ]
        for left, right in zip(batched, solo):
            assert candidate_keys(left) == candidate_keys(right)
            assert left.stats.bytes_from_disk == right.stats.bytes_from_disk

    def test_batch_populates_the_retrieval_cache(self):
        server = self.make_server(cache_size=16)
        first = server.retrieve_batch(goal_terms(), mode=SearchMode.BOTH)
        hits_before = server.cache_hits
        second = server.retrieve_batch(goal_terms(), mode=SearchMode.BOTH)
        assert server.cache_hits > hits_before
        for left, right in zip(first, second):
            assert candidate_keys(left) == candidate_keys(right)

    def test_batched_fs1_is_one_scan_pass(self):
        obs = Instrumentation()
        kb = KnowledgeBase(obs=obs)
        kb.consult_text(PROGRAM)
        server = ClauseRetrievalServer(kb, obs=obs)
        server.retrieve_batch(
            [read_term("fact(k1, N, V)"), read_term("fact(k2, N, V)")],
            mode=SearchMode.FS1_ONLY,
        )
        assert obs.registry.total("fs1.batch.scans") == 1
        # Per-query simulated accounting is untouched by batching.
        assert obs.registry.total("fs1.searches") == 2


class TestDecodeCache:
    def test_decode_cache_serves_recurring_candidates(self):
        obs = Instrumentation()
        kb = KnowledgeBase(obs=obs)
        kb.consult_text(PROGRAM)
        server = ClauseRetrievalServer(kb, obs=obs)  # no retrieval LRU
        goal = read_term("fact(k1, N, V)")
        first = server.retrieve(goal, mode=SearchMode.BOTH)
        misses_after_first = obs.registry.total("crs.decode_cache.misses")
        assert misses_after_first == len(first.candidates) > 0
        second = server.retrieve(goal, mode=SearchMode.BOTH)
        assert candidate_keys(first) == candidate_keys(second)
        # Second pass decoded nothing new.
        assert (
            obs.registry.total("crs.decode_cache.misses") == misses_after_first
        )
        assert obs.registry.total("crs.decode_cache.hits") >= len(
            second.candidates
        )

    def test_decode_cache_respects_mutations(self):
        kb = KnowledgeBase()
        kb.consult_text("fact(a, 1). fact(b, 2).")
        server = ClauseRetrievalServer(kb)
        goal = read_term("fact(a, N)")
        before = server.retrieve(goal, mode=SearchMode.BOTH)
        assert candidate_keys(before) == ["fact(a,1)"]
        # retract+asserta rebuild the clause file under a new generation;
        # stale (generation, address) keys can never resurface.
        assert kb.retract(read_term("fact(a, 1)"))
        kb.asserta(read_term("fact(a, 99)"))
        after = server.retrieve(goal, mode=SearchMode.BOTH)
        assert candidate_keys(after) == ["fact(a,99)"]

    def test_decode_cache_can_be_disabled(self):
        obs = Instrumentation()
        kb = KnowledgeBase(obs=obs)
        kb.consult_text(PROGRAM)
        server = ClauseRetrievalServer(kb, obs=obs, decode_cache_size=0)
        goal = read_term("fact(k1, N, V)")
        server.retrieve(goal, mode=SearchMode.BOTH)
        server.retrieve(goal, mode=SearchMode.BOTH)
        assert obs.registry.total("crs.decode_cache.hits") == 0
        assert obs.registry.total("crs.decode_cache.misses") == 0


class TestClusterBatch:
    def make_cluster(self, shards: int, **kwargs) -> ShardedRetrievalServer:
        server = ShardedRetrievalServer(shards, **kwargs)
        server.consult_text(PROGRAM)
        return server

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("mode", MODES)
    def test_cluster_batch_matches_sequential(self, shards, mode):
        batch_cluster = self.make_cluster(shards)
        solo_cluster = self.make_cluster(shards)
        batched = batch_cluster.retrieve_batch(goal_terms(), mode=mode)
        solo = [
            solo_cluster.retrieve(goal, mode=mode) for goal in goal_terms()
        ]
        for left, right in zip(batched, solo):
            assert candidate_keys(left) == candidate_keys(right)
            assert left.stats.shards_queried == right.stats.shards_queried
            assert left.stats.filter_time_s == pytest.approx(
                right.stats.filter_time_s
            )
            assert left.stats.serial_filter_time_s == pytest.approx(
                right.stats.serial_filter_time_s
            )

    def test_cluster_batch_matches_single_engine(self):
        cluster = self.make_cluster(3)
        kb = KnowledgeBase()
        kb.consult_text(PROGRAM)
        single = ClauseRetrievalServer(kb)
        batched = cluster.retrieve_batch(goal_terms(), mode=SearchMode.BOTH)
        for result, goal in zip(batched, goal_terms()):
            expected = single.retrieve(goal, mode=SearchMode.BOTH)
            assert sorted(candidate_keys(result)) == sorted(
                candidate_keys(expected)
            )

    def test_cluster_batch_uses_the_cluster_cache(self):
        cluster = self.make_cluster(2, cache_size=16)
        cluster.retrieve_batch(goal_terms(), mode=SearchMode.BOTH)
        hits_before = cluster.cache_hits
        cluster.retrieve_batch(goal_terms(), mode=SearchMode.BOTH)
        assert cluster.cache_hits > hits_before

    def test_executor_batch_fs1_matches_fanout(self):
        cluster = self.make_cluster(3)
        executor = BatchExecutor(cluster)
        fanout = executor.run(goal_terms())
        batched = executor.run(goal_terms(), batch_fs1=True)
        assert len(fanout.results) == len(batched.results)
        for left, right in zip(fanout.results, batched.results):
            assert candidate_keys(left) == candidate_keys(right)
        assert batched.stats.wall_clock_s == pytest.approx(
            fanout.stats.wall_clock_s
        )
        assert batched.stats.serial_time_s == pytest.approx(
            fanout.stats.serial_time_s
        )
