"""Unit tests for the shard router and the first-argument index key.

The load-bearing property: first-argument pruning must be sound with
respect to the *level-3 partial matcher* (the filter the FS2/software
paths apply), not merely unification — a skipped shard must hold no
clause the filter would accept.  The hypothesis property at the bottom
checks the key against the matcher's acceptance relation directly.
"""

import pytest
from hypothesis import given, settings

from repro.cluster import ShardRouter, ShardingPolicy, stable_shard_hash
from repro.crs.keys import first_arg_index_key
from repro.storage import UnknownPredicateError
from repro.terms import Struct, Var, read_term
from repro.unify import partial_match

from .strategies import terms


def heads(*texts):
    return [read_term(t) for t in texts]


class TestStableHash:
    def test_deterministic_across_calls(self):
        key = ("arg", ("p", 2), ("a", "tom"))
        assert stable_shard_hash(key) == stable_shard_hash(key)

    def test_known_value_pins_cross_process_stability(self):
        # CRC-32 of the repr is process- and PYTHONHASHSEED-independent;
        # pinning one value catches accidental re-keying.
        assert stable_shard_hash(("a", "tom")) == stable_shard_hash(("a", "tom"))
        assert stable_shard_hash(("a", "tom")) != stable_shard_hash(("a", "bob"))


class TestPredicatePolicy:
    def test_all_clauses_of_predicate_share_a_shard(self):
        router = ShardRouter(5, ShardingPolicy.PREDICATE)
        shards = {router.route_clause(h) for h in heads(
            "p(a, b)", "p(c, d)", "p(X, Y)", "p(f(g), h)"
        )}
        assert len(shards) == 1

    def test_goal_routes_to_single_home_shard(self):
        router = ShardRouter(5, ShardingPolicy.PREDICATE)
        home = router.route_clause(read_term("p(a, b)"))
        assert router.route_goal(read_term("p(X, Y)")) == (home,)
        assert not router.is_broadcast(read_term("p(X, Y)"))

    def test_unknown_predicate_raises(self):
        router = ShardRouter(3, ShardingPolicy.PREDICATE)
        router.route_clause(read_term("p(a)"))
        with pytest.raises(UnknownPredicateError):
            router.route_goal(read_term("q(a)"))


class TestRoundRobinPolicy:
    def test_clauses_spread_evenly(self):
        router = ShardRouter(4, ShardingPolicy.ROUND_ROBIN)
        placed = [router.route_clause(read_term(f"p(a{i})")) for i in range(8)]
        assert placed == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_every_goal_broadcasts_to_populated_shards(self):
        router = ShardRouter(4, ShardingPolicy.ROUND_ROBIN)
        for i in range(3):
            router.route_clause(read_term(f"p(a{i})"))
        assert router.route_goal(read_term("p(a0)")) == (0, 1, 2)


class TestFirstArgPolicy:
    def test_same_key_clauses_colocate(self):
        router = ShardRouter(7, ShardingPolicy.FIRST_ARG)
        a = router.route_clause(read_term("p(tom, one)"))
        b = router.route_clause(read_term("p(tom, two)"))
        assert a == b

    def test_compound_keys_use_principal_functor(self):
        router = ShardRouter(7, ShardingPolicy.FIRST_ARG)
        a = router.route_clause(read_term("p(f(x), one)"))
        b = router.route_clause(read_term("p(f(y), two)"))
        assert a == b  # f/1 is the key, not the whole term

    def test_goal_with_unbound_first_arg_broadcasts(self):
        router = ShardRouter(4, ShardingPolicy.FIRST_ARG)
        placed = {router.route_clause(h) for h in heads(
            "p(a, x)", "p(b, x)", "p(c, x)", "p(d, x)", "p(e, x)"
        )}
        goal = Struct("p", (Var("X"), Var("X")))  # married_couple(X, X) shape
        assert set(router.route_goal(goal)) == placed

    def test_variable_headed_clause_joins_every_goal(self):
        router = ShardRouter(4, ShardingPolicy.FIRST_ARG)
        router.route_clause(read_term("p(a, x)"))
        catch_all = router.route_clause(read_term("p(Z, x)"))
        targets = router.route_goal(read_term("p(b, Q)"))
        assert catch_all in targets

    def test_prune_false_fans_out_to_all_populated_shards(self):
        # FS1-only retrievals must not be pruned: codeword false drops
        # are not confined to the first-arg key's shard.
        router = ShardRouter(4, ShardingPolicy.FIRST_ARG)
        placed = {router.route_clause(h) for h in heads(
            "p(a, x)", "p(b, x)", "p(f(c), x)", "p([h], x)", "p(9, x)"
        )}
        pruned = router.route_goal(read_term("p(a, Q)"))
        unpruned = router.route_goal(read_term("p(a, Q)"), prune=False)
        assert set(unpruned) == placed
        assert set(pruned) <= set(unpruned)

    def test_lists_and_nil_share_one_shard(self):
        # Level-3 repetitive list matching lets [] pass [H|T]: all
        # list-category first arguments must co-locate.
        router = ShardRouter(9, ShardingPolicy.FIRST_ARG)
        a = router.route_clause(read_term("p([], x)"))
        b = router.route_clause(read_term("p([one, two], x)"))
        c = router.route_clause(read_term("p([h | T], x)"))
        assert a == b == c
        assert router.route_goal(read_term("p([z], Q)")) == (a,)


class TestFirstArgIndexKey:
    def test_unindexable_cases(self):
        assert first_arg_index_key(read_term("zero_arity")) is None
        assert first_arg_index_key(Struct("p", (Var("X"),))) is None

    def test_saturated_arities_share_a_key(self):
        wide_a = read_term("p(f(" + ",".join(["a"] * 35) + "))")
        wide_b = read_term("p(f(" + ",".join(["b"] * 40) + "))")
        narrow = read_term("p(f(a, b))")
        assert first_arg_index_key(wide_a) == first_arg_index_key(wide_b)
        assert first_arg_index_key(wide_a) != first_arg_index_key(narrow)

    @given(goal_arg=terms(max_depth=2), clause_arg=terms(max_depth=2))
    @settings(max_examples=300, deadline=None)
    def test_key_sound_for_level3_partial_matching(self, goal_arg, clause_arg):
        """If the filter accepts the pair, the keys agree (or one is None).

        This is the exact condition first-argument shard pruning relies
        on: a clause on a skipped shard must be one the FS2/software
        filter would have rejected anyway.
        """
        goal = Struct("p", (goal_arg, read_term("tail")))
        head = Struct("p", (clause_arg, Var("T")))
        if partial_match(goal, head):
            gk = first_arg_index_key(goal)
            ck = first_arg_index_key(head)
            assert gk is None or ck is None or gk == ck, (goal_arg, clause_arg)
