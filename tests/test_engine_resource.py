"""Regression tests: deep recursion budgets and cyclic (rational-tree) bindings.

Two resolution-engine failure modes fixed in the same sweep:

* deep conjunctive recursion used to die with a raw ``RecursionError``
  (the interpreter nests one generator chain per proof level, so a
  ~160-deep proof blew the default Python stack budget — e.g. ``nrev``
  on a 300-element list, or a long ``path/2`` chain);
* cyclic bindings (``X = f(X)``, legal under no-occurs-check
  unification) used to hang or overflow when resolved, printed, tested
  for groundness, or unified against another cycle.
"""

import pytest

from repro.engine import PrologMachine, PrologError, ResourceError
from repro.engine.interp import Solver
from repro.engine.zipvm import ZipMachine
from repro.storage import KnowledgeBase
from repro.terms import (
    Atom,
    Struct,
    Var,
    clause_from_term,
    functor_indicator,
    read_program,
    read_term,
    term_to_string,
    variables,
)
from repro.workloads import chain_program, nrev_goal, nrev_program


def indexed_retriever(text: str):
    """A first-argument-indexed in-memory retriever.

    Deep-chain tests need thousands of inferences; without first-arg
    indexing every ``edge/2`` call would scan the whole fact base and
    the test would measure unification throughput instead of recursion
    depth.  This mirrors what the CRS provides (a sound candidate
    superset, much smaller than the procedure).
    """
    by_indicator: dict = {}
    for term in read_program(text):
        clause = clause_from_term(term)
        by_indicator.setdefault(clause.indicator, []).append(clause)

    def retrieve(goal):
        clauses = by_indicator.get(functor_indicator(goal), [])
        if isinstance(goal, Struct) and goal.args:
            first = goal.args[0]
            if isinstance(first, Atom):
                return [
                    c for c in clauses
                    if not (
                        isinstance(c.head.args[0], Atom)
                        and c.head.args[0] != first
                    )
                ]
        return list(clauses)

    return retrieve


class TestDeepRecursion:
    def test_deep_chain_resolves_past_the_default_python_stack(self):
        # 2000 proof levels is far beyond the ~160 the interpreter
        # could field before it sized the stack budget explicitly.
        depth = 2000
        solver = Solver(indexed_retriever(chain_program(depth)))
        goal = read_term(f"path(n0, n{depth})")
        assert len(list(solver.solve(goal))) == 1

    def test_depth_beyond_the_stack_ceiling_raises_resource_error(self):
        # A proof too deep for any safe Python stack must surface as
        # the typed ResourceError, never a raw RecursionError.
        depth = 6000
        solver = Solver(indexed_retriever(chain_program(depth)))
        goal = read_term(f"path(n0, n{depth})")
        with pytest.raises(ResourceError, match="stack|depth"):
            list(solver.solve(goal))

    def test_configured_depth_limit_raises_resource_error(self):
        solver = Solver(
            indexed_retriever(chain_program(100)), max_depth=20
        )
        with pytest.raises(ResourceError, match="depth"):
            list(solver.solve(read_term("path(n0, n100)")))

    def test_resource_error_is_a_prolog_error(self):
        # Callers that already catch PrologError keep working.
        assert issubclass(ResourceError, PrologError)

    def test_zip_machine_is_stackless_on_deep_chains(self):
        # The VM drives explicit goal/choice-point stacks, so the same
        # proof depth needs no Python stack headroom at all.
        depth = 2500
        vm = ZipMachine(indexed_retriever(chain_program(depth)))
        goal = read_term(f"path(n0, n{depth})")
        assert len(list(vm.solve(goal))) == 1

    def test_nrev_answer_is_correct(self):
        # The workload from the original failure report, scaled to a
        # size the simulator interprets quickly; the recursion-depth
        # coverage above goes far deeper than nrev-300 ever did.
        solver = Solver(indexed_retriever(nrev_program()))
        n = 60
        goal = read_term(nrev_goal(n))
        result_var = next(v for v in variables(goal) if v.name == "R")
        # The solver yields live bindings: snapshot before advancing.
        rendered = [
            term_to_string(b.resolve(result_var)) for b in solver.solve(goal)
        ]
        expected = "[" + ",".join(str(i) for i in reversed(range(n))) + "]"
        assert rendered == [expected]


class TestCyclicBindings:
    def setup_method(self):
        self.kb = KnowledgeBase()
        self.kb.consult_text("mark(done).")
        self.machine = PrologMachine(self.kb, unknown_predicates="fail")

    def test_cyclic_binding_can_be_created_and_printed(self):
        solutions = list(self.machine.solve_text("X = f(X)"))
        assert len(solutions) == 1
        # Printing must terminate; the cycle variable appears unexpanded.
        rendered = term_to_string(solutions[0]["X"])
        assert rendered.startswith("f(")

    def test_cyclic_binding_is_backtracked_over(self):
        solutions = list(
            self.machine.solve_text("(X = f(X), mark(X) ; X = done)")
        )
        assert [term_to_string(s["X"]) for s in solutions] == ["done"]

    def test_two_cycles_unify(self):
        # Coinductive struct-struct unification: both sides are the
        # rational tree f(f(f(...))), so X = Y must succeed.
        solutions = list(
            self.machine.solve_text("X = f(X), Y = f(Y), X = Y")
        )
        assert len(solutions) == 1

    def test_cycle_against_mismatched_functor_fails(self):
        assert not list(
            self.machine.solve_text("X = f(X), Y = g(Y), X = Y")
        )

    def test_ground_on_cyclic_term(self):
        # A rational tree with no free leaves is ground (SWI semantics).
        assert len(list(self.machine.solve_text("X = f(X), ground(X)"))) == 1
        assert not list(self.machine.solve_text("X = f(X, Z), ground(X)"))

    def test_nested_cycle_inside_structure(self):
        solutions = list(
            self.machine.solve_text("X = g(a, X), X = g(A, B)")
        )
        assert len(solutions) == 1
        assert term_to_string(solutions[0]["A"]) == "a"
