"""Cluster manifest: validation, evolution, CAS flips, serialisation."""

import json
import threading

import pytest
from hypothesis import given, settings

from repro.cluster import (
    ClusterManifest,
    ManifestError,
    ManifestHolder,
    ManifestVersionError,
)
from tests.strategies import manifests


def two_shard_manifest() -> ClusterManifest:
    return ClusterManifest(
        num_shards=2,
        policy="predicate",
        version=1,
        replicas={0: ("a:1", "b:2"), 1: ("c:3", "d:4")},
    )


class TestValidation:
    def test_shard_id_out_of_range_rejected(self):
        with pytest.raises(ManifestError):
            ClusterManifest(
                num_shards=2, policy="predicate", replicas={2: ("a:1",)}
            )

    def test_duplicate_replica_address_rejected(self):
        with pytest.raises(ManifestError):
            ClusterManifest(
                num_shards=1, policy="predicate",
                replicas={0: ("a:1", "a:1")},
            )

    def test_negative_version_rejected(self):
        with pytest.raises(ManifestError):
            ClusterManifest(num_shards=1, policy="predicate", version=-1)

    def test_zero_shards_rejected(self):
        with pytest.raises(ManifestError):
            ClusterManifest(num_shards=0, policy="predicate")

    def test_lists_normalised_to_tuples(self):
        manifest = ClusterManifest(
            num_shards=1, policy="predicate", replicas={0: ["a:1"]}
        )
        assert manifest.replicas_for(0) == ("a:1",)


class TestQueries:
    def test_replicas_for_and_addresses(self):
        manifest = two_shard_manifest()
        assert manifest.replicas_for(0) == ("a:1", "b:2")
        assert manifest.replicas_for(9) == ()
        assert manifest.addresses() == ("a:1", "b:2", "c:3", "d:4")

    def test_shards_at_and_replication_factor(self):
        manifest = two_shard_manifest()
        assert manifest.shards_at("c:3") == (1,)
        assert manifest.shards_at("nowhere:0") == ()
        assert manifest.replication_factor() == 2


class TestEvolution:
    def test_with_replica_bumps_version(self):
        manifest = two_shard_manifest()
        grown = manifest.with_replica(0, "e:5")
        assert grown.version == manifest.version + 1
        assert grown.replicas_for(0) == ("a:1", "b:2", "e:5")
        # The original is untouched (immutability).
        assert manifest.replicas_for(0) == ("a:1", "b:2")

    def test_without_replica(self):
        shrunk = two_shard_manifest().without_replica(1, "c:3")
        assert shrunk.replicas_for(1) == ("d:4",)

    def test_moved_replica_is_one_atomic_step(self):
        moved = two_shard_manifest().moved_replica(0, "a:1", "z:9")
        assert moved.version == 2
        # In-place substitution: the replica order is preserved.
        assert moved.replicas_for(0) == ("z:9", "b:2")

    def test_moved_replica_rejects_unknown_source(self):
        with pytest.raises(ManifestError):
            two_shard_manifest().moved_replica(0, "nope:1", "z:9")

    def test_moved_replica_rejects_duplicate_target(self):
        with pytest.raises(ManifestError):
            two_shard_manifest().moved_replica(0, "a:1", "b:2")


class TestSerialisation:
    def test_json_round_trip(self):
        manifest = two_shard_manifest()
        again = ClusterManifest.from_json(manifest.to_json())
        assert again == manifest

    def test_json_is_stable(self):
        text = two_shard_manifest().to_json()
        assert json.loads(text)["replicas"]["0"] == ["a:1", "b:2"]
        assert two_shard_manifest().to_json() == text

    def test_malformed_json_raises_manifest_error(self):
        with pytest.raises(ManifestError):
            ClusterManifest.from_json("not json at all{")
        with pytest.raises(ManifestError):
            ClusterManifest.from_json("[1, 2]")
        with pytest.raises(ManifestError):
            ClusterManifest.from_json('{"version": 3}')

    @settings(max_examples=50, deadline=None)
    @given(manifests())
    def test_round_trip_any_valid_manifest(self, manifest):
        assert ClusterManifest.from_json(manifest.to_json()) == manifest

    @settings(max_examples=50, deadline=None)
    @given(manifests())
    def test_every_shard_readable_after_move(self, manifest):
        """Moving any replica keeps all placement invariants intact."""
        for shard_id in range(manifest.num_shards):
            group = manifest.replicas_for(shard_id)
            if not group:
                continue
            moved = manifest.moved_replica(
                shard_id, group[0], "fresh-node:1"
            )
            assert moved.version == manifest.version + 1
            assert "fresh-node:1" in moved.replicas_for(shard_id)
            assert group[0] not in moved.replicas_for(shard_id)
            break


class TestHolder:
    def test_flip_accepts_successor_only(self):
        holder = ManifestHolder(two_shard_manifest())
        successor = holder.current.with_replica(0, "e:5")
        assert holder.flip(successor) is successor
        assert holder.version == 2

    def test_flip_rejects_stale_and_skipped_versions(self):
        holder = ManifestHolder(two_shard_manifest())
        stale = two_shard_manifest()  # same version as current
        with pytest.raises(ManifestVersionError):
            holder.flip(stale)
        skipped = ClusterManifest(
            num_shards=2, policy="predicate", version=5,
            replicas={0: ("a:1",)},
        )
        with pytest.raises(ManifestVersionError):
            holder.flip(skipped)

    def test_concurrent_flips_one_winner(self):
        holder = ManifestHolder(two_shard_manifest())
        base = holder.current
        outcomes = []

        def racer(address):
            try:
                holder.flip(base.with_replica(0, address))
                outcomes.append(("won", address))
            except ManifestVersionError:
                outcomes.append(("lost", address))

        threads = [
            threading.Thread(target=racer, args=(f"n{i}:1",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [address for kind, address in outcomes if kind == "won"]
        assert len(winners) == 1
        assert holder.version == base.version + 1
