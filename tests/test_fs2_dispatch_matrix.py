"""Table-driven coverage of every FS2 map-ROM dispatch pair.

Each test row pins down one (db item class, query item class) combination
at the top level of the argument stream and asserts the filter's decision
— the executable version of the paper's section 3.1 category table.
"""

import pytest

from repro.fs2 import SecondStageFilter
from repro.pif import SymbolTable, compile_clause
from repro.terms import clause_from_term, read_term
from repro.unify import PartialMatcher

# (query argument, db argument, expected hit at level 3 + cross binding)
DISPATCH_CASES = [
    # anonymous on either side: skip (paper: "don't care object")
    ("_", "a", True),
    ("a", "_", True),
    ("_", "_", True),
    ("_", "f(a, b)", True),
    ("f(a, b)", "_", True),
    # first-occurrence variables: store, always succeed
    ("X", "a", True),
    ("a", "Y", True),
    ("X", "Y", True),
    ("X", "f(a)", True),
    ("f(a)", "Y", True),
    # simple/simple comparisons
    ("a", "a", True),
    ("a", "b", False),
    ("7", "7", True),
    ("7", "8", False),
    ("1.5", "1.5", True),
    ("1.5", "2.5", False),
    ("a", "1", False),
    ("1", "1.0", False),
    # simple vs complex: type mismatch
    ("a", "f(a)", False),
    ("f(a)", "a", False),
    ("[1]", "a", False),
    ("1", "[1]", False),
    # complex/complex
    ("f(a)", "f(a)", True),
    ("f(a)", "f(b)", False),
    ("f(a)", "g(a)", False),
    ("f(a)", "f(a, b)", False),
    ("[1, 2]", "[1, 2]", True),
    ("[1, 2]", "[1, 2, 3]", False),
    ("[1 | T]", "[1, 2, 3]", True),
    ("[]", "[]", True),
    ("[]", "[1]", False),
]

# Subsequent-occurrence pairs need two argument positions.
SUBSEQUENT_CASES = [
    # Sub-QV: query variable repeated
    ("p(X, X)", "p(a, a)", True),
    ("p(X, X)", "p(a, b)", False),
    # Sub-DV: clause variable repeated
    ("p(a, a)", "p(V, V)", True),
    ("p(a, b)", "p(V, V)", False),
    # cross bindings (var-var then constant)
    ("p(X, X)", "p(V, V)", True),
    ("p(X, b, X)", "p(V, V, b)", True),
    ("p(X, b, X)", "p(V, V, c)", False),
    # subsequent vs first on the other side
    ("p(X, X)", "p(a, V)", True),
    ("p(a, X, X)", "p(V, V, b)", False),  # X=V=a then X=b clashes
    ("p(a, X, X)", "p(V, V, a)", True),
]


def run_fs2(query_text: str, clause_text: str) -> bool:
    symbols = SymbolTable()
    compiled = compile_clause(clause_from_term(read_term(clause_text)), symbols)
    fs2 = SecondStageFilter(symbols)
    fs2.load_microprogram()
    query = read_term(query_text)
    fs2.set_query(query)
    sim = fs2.match_compiled(compiled)
    oracle = PartialMatcher(query).match_head(read_term(clause_text)).hit
    assert sim == oracle, "simulator and oracle must agree"
    return sim


class TestDispatchPairs:
    @pytest.mark.parametrize("query_arg,db_arg,expected", DISPATCH_CASES)
    def test_single_argument_pair(self, query_arg, db_arg, expected):
        assert run_fs2(f"p({query_arg})", f"p({db_arg})") is expected

    @pytest.mark.parametrize("query,clause,expected", SUBSEQUENT_CASES)
    def test_subsequent_occurrence_pair(self, query, clause, expected):
        assert run_fs2(query, clause) is expected

    def test_anonymous_with_complex_consumes_stream_correctly(self):
        # The anonymous skip must consume the whole opposing subtree, or
        # the following argument pair would misalign.
        assert run_fs2("p(_, after)", "p(f(g(1), [2, 3]), after)")
        assert not run_fs2("p(_, after)", "p(f(g(1), [2, 3]), other)")

    def test_variable_with_complex_consumes_stream_correctly(self):
        assert run_fs2("p(X, after)", "p(f(g(1), [2, 3]), after)")
        assert not run_fs2("p(X, after)", "p(f(g(1), [2, 3]), other)")

    def test_repeated_variable_against_complex(self):
        assert run_fs2("p(X, X)", "p(f(a), f(a))")
        assert not run_fs2("p(X, X)", "p(f(a), g(a))")
        # Shallow stored-word comparison: same functor+arity passes even
        # with differing elements (a documented hardware false drop).
        assert run_fs2("p(X, X)", "p(f(a), f(b))")
