"""Tests for CRS concurrency control: locks, transactions, deadlocks."""

import pytest

from repro.crs import (
    ClauseRetrievalServer,
    CRSFrontEnd,
    DeadlockError,
    LockManager,
    LockMode,
    TransactionAborted,
    TransactionManager,
    WouldBlock,
)
from repro.storage import KnowledgeBase
from repro.terms import read_term


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        assert locks.acquire(1, ("p", 1), LockMode.SHARED)
        assert locks.acquire(2, ("p", 1), LockMode.SHARED)
        assert set(locks.holders(("p", 1))) == {1, 2}

    def test_exclusive_conflicts(self):
        locks = LockManager()
        assert locks.acquire(1, ("p", 1), LockMode.EXCLUSIVE)
        assert not locks.acquire(2, ("p", 1), LockMode.SHARED)
        assert not locks.acquire(3, ("p", 1), LockMode.EXCLUSIVE)

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        assert locks.acquire(1, ("p", 1), LockMode.SHARED)
        assert not locks.acquire(2, ("p", 1), LockMode.EXCLUSIVE)

    def test_reacquire_same_txn(self):
        locks = LockManager()
        assert locks.acquire(1, ("p", 1), LockMode.SHARED)
        assert locks.acquire(1, ("p", 1), LockMode.SHARED)
        assert locks.acquire(1, ("p", 1), LockMode.EXCLUSIVE)  # upgrade
        assert locks.holders(("p", 1))[1] == LockMode.EXCLUSIVE

    def test_release_and_retry(self):
        locks = LockManager()
        locks.acquire(1, ("p", 1), LockMode.EXCLUSIVE)
        assert not locks.acquire(2, ("p", 1), LockMode.SHARED)
        freed = locks.release_all(1)
        assert ("p", 1) in freed
        granted = locks.retry_waiters(("p", 1))
        assert granted == [2]

    def test_deadlock_detected(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(1, "b", LockMode.EXCLUSIVE)  # 1 waits on 2
        with pytest.raises(DeadlockError) as excinfo:
            locks.acquire(2, "a", LockMode.EXCLUSIVE)  # closes the cycle
        assert set(excinfo.value.cycle) == {1, 2}

    def test_three_way_deadlock(self):
        locks = LockManager()
        for txn, resource in ((1, "a"), (2, "b"), (3, "c")):
            locks.acquire(txn, resource, LockMode.EXCLUSIVE)
        assert not locks.acquire(1, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "c", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(3, "a", LockMode.EXCLUSIVE)

    def test_no_false_deadlock(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "a", LockMode.EXCLUSIVE)
        # 2 waits on 1, but 1 waits on nobody: no cycle.
        assert not locks.acquire(2, "a", LockMode.EXCLUSIVE)


class TestLockFairness:
    """Regressions for writer starvation and waiter-queue jumping."""

    def test_new_shared_waits_behind_queued_exclusive(self):
        # Writer starvation: a stream of readers used to be granted over
        # a waiting writer forever, because grants only checked holders.
        locks = LockManager()
        assert locks.acquire(1, ("p", 1), LockMode.SHARED)
        assert not locks.acquire(2, ("p", 1), LockMode.EXCLUSIVE)
        assert not locks.acquire(3, ("p", 1), LockMode.SHARED)
        assert locks.waiters(("p", 1)) == [
            (2, LockMode.EXCLUSIVE),
            (3, LockMode.SHARED),
        ]
        assert set(locks.holders(("p", 1))) == {1}

    def test_retry_waiters_respects_fifo(self):
        # A SHARED waiter queued behind an EXCLUSIVE waiter must not be
        # granted out of order when a holder releases.
        locks = LockManager()
        locks.acquire(1, ("p", 1), LockMode.SHARED)
        locks.acquire(2, ("p", 1), LockMode.SHARED)
        assert not locks.acquire(3, ("p", 1), LockMode.EXCLUSIVE)
        assert not locks.acquire(4, ("p", 1), LockMode.SHARED)
        assert locks.release_all(1) == [("p", 1)]
        # txn 2 still holds SHARED: the EXCLUSIVE at the head cannot go,
        # and the SHARED behind it must not jump the queue.
        assert locks.retry_waiters(("p", 1)) == []
        assert locks.waiters(("p", 1)) == [
            (3, LockMode.EXCLUSIVE),
            (4, LockMode.SHARED),
        ]
        locks.release_all(2)
        assert locks.retry_waiters(("p", 1)) == [3]
        assert locks.holders(("p", 1)) == {3: LockMode.EXCLUSIVE}
        locks.release_all(3)
        assert locks.retry_waiters(("p", 1)) == [4]

    def test_retry_grants_shared_batch_up_to_exclusive(self):
        locks = LockManager()
        locks.acquire(1, ("p", 1), LockMode.EXCLUSIVE)
        assert not locks.acquire(2, ("p", 1), LockMode.SHARED)
        assert not locks.acquire(3, ("p", 1), LockMode.SHARED)
        assert not locks.acquire(4, ("p", 1), LockMode.EXCLUSIVE)
        locks.release_all(1)
        # Both leading SHARED waiters go together; the EXCLUSIVE stays.
        assert locks.retry_waiters(("p", 1)) == [2, 3]
        assert locks.waiters(("p", 1)) == [(4, LockMode.EXCLUSIVE)]

    def test_upgrade_bypasses_waiter_queue(self):
        # A holder upgrading SHARED -> EXCLUSIVE must not queue behind
        # other waiters on the same resource, or it deadlocks on itself.
        locks = LockManager()
        locks.acquire(1, ("p", 1), LockMode.SHARED)
        locks.acquire(2, ("p", 1), LockMode.SHARED)
        assert not locks.acquire(3, ("p", 1), LockMode.EXCLUSIVE)
        assert not locks.acquire(1, ("p", 1), LockMode.EXCLUSIVE)  # blocked by 2
        locks.release_all(2)
        assert locks.retry_waiters(("p", 1)) == [1]
        assert locks.holders(("p", 1)) == {1: LockMode.EXCLUSIVE}

    def test_release_withdraws_queued_requests(self):
        locks = LockManager()
        locks.acquire(1, ("p", 1), LockMode.EXCLUSIVE)
        assert not locks.acquire(2, ("p", 1), LockMode.EXCLUSIVE)
        # Aborting txn 2 must drop its queued request, and the resource
        # counts as touched so the caller retries remaining waiters.
        assert locks.release_all(2) == [("p", 1)]
        assert locks.waiters(("p", 1)) == []


class TestTransactions:
    def test_commit_releases(self):
        manager = TransactionManager()
        txn1 = manager.begin()
        txn2 = manager.begin()
        assert txn1.write_lock(("p", 1))
        assert not txn2.read_lock(("p", 1))
        txn1.commit()
        # After release the waiter was granted its lock.
        assert manager.locks.holders(("p", 1)) == {
            txn2.txn_id: LockMode.SHARED
        }

    def test_finished_transaction_rejects_work(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            txn.read_lock(("p", 1))

    def test_deadlock_aborts_requester(self):
        manager = TransactionManager()
        txn1 = manager.begin()
        txn2 = manager.begin()
        txn1.write_lock("a")
        txn2.write_lock("b")
        txn1.write_lock("b")  # waits
        with pytest.raises(DeadlockError):
            txn2.write_lock("a")
        assert not txn2.active
        assert txn1.active
        # The victim's locks are gone; txn1 can now get "b".
        assert manager.locks.holders("b").get(txn1.txn_id) == LockMode.EXCLUSIVE

    def test_active_count(self):
        manager = TransactionManager()
        txn1 = manager.begin()
        txn2 = manager.begin()
        assert manager.active_count == 2
        txn1.commit()
        txn2.abort()
        assert manager.active_count == 0


class TestMultiClientFrontEnd:
    def make_front_end(self):
        kb = KnowledgeBase()
        kb.consult_text("p(a). p(b). q(1).")
        return CRSFrontEnd(ClauseRetrievalServer(kb))

    def test_concurrent_readers(self):
        front_end = self.make_front_end()
        alice = front_end.connect()
        bob = front_end.connect()
        assert len(alice.retrieve(read_term("p(X)"))) == 2
        assert len(bob.retrieve(read_term("p(X)"))) == 2

    def test_writer_blocks_reader(self):
        front_end = self.make_front_end()
        writer = front_end.connect()
        reader = front_end.connect()
        writer.assertz(read_term("p(c)"))
        with pytest.raises(WouldBlock):
            reader.retrieve(read_term("p(X)"))
        writer.commit()
        # New transaction sees the committed clause.
        assert len(front_end.connect().retrieve(read_term("p(X)"))) == 3

    def test_reader_blocks_writer(self):
        front_end = self.make_front_end()
        reader = front_end.connect()
        writer = front_end.connect()
        reader.retrieve(read_term("p(X)"))
        with pytest.raises(WouldBlock):
            writer.assertz(read_term("p(c)"))

    def test_independent_predicates_no_conflict(self):
        front_end = self.make_front_end()
        one = front_end.connect()
        two = front_end.connect()
        one.assertz(read_term("p(c)"))
        two.assertz(read_term("q(2)"))  # different predicate: no conflict
        one.commit()
        two.commit()

    def test_retract_under_lock(self):
        front_end = self.make_front_end()
        client = front_end.connect()
        assert client.retract(read_term("p(a)"))
        client.commit()
        assert len(front_end.connect().retrieve(read_term("p(X)"))) == 1
