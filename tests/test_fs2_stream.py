"""Tests for the disk-to-FS2 streaming co-simulation."""

from repro.disk import FUJITSU_M2351A, MICROPOLIS_1325
from repro.fs2 import SecondStageFilter, simulate_streaming_search
from repro.pif import SymbolTable, compile_clause
from repro.terms import clause_from_term, read_term


def prepared(clause_texts, query_text, indicator):
    symbols = SymbolTable()
    records = [
        compile_clause(clause_from_term(read_term(text)), symbols).to_bytes()
        for text in clause_texts
    ]
    fs2 = SecondStageFilter(symbols)
    fs2.load_microprogram()
    fs2.set_query(read_term(query_text))
    return fs2, records


class TestStreamingTimeline:
    def test_per_clause_records(self):
        fs2, records = prepared(
            ["p(a, b)", "p(a, c)", "p(x, y)"], "p(a, X)", ("p", 2)
        )
        timeline = simulate_streaming_search(fs2, records, ("p", 2))
        assert len(timeline.clauses) == 3
        assert timeline.satisfiers == 2
        assert [c.hit for c in timeline.clauses] == [True, True, False]
        for clause in timeline.clauses:
            assert clause.transfer_ns > 0
            assert clause.match_ns > 0

    def test_match_times_follow_table1(self):
        fs2, records = prepared(["p(a)"], "p(a)", ("p", 1))
        timeline = simulate_streaming_search(fs2, records, ("p", 1))
        assert timeline.clauses[0].match_ns == 105  # one MATCH

    def test_double_buffering_never_slower(self):
        fs2, records = prepared(
            [f"p(c{i}, f(c{i}, {i}))" for i in range(20)],
            "p(X, f(X, N))",
            ("p", 2),
        )
        timeline = simulate_streaming_search(fs2, records, ("p", 2))
        assert timeline.double_buffered_ns <= timeline.single_buffered_ns
        assert timeline.overlap_speedup >= 1.0

    def test_disk_bound_regime(self):
        """At realistic rates, transfer dominates: the filter is free."""
        fs2, records = prepared(
            [f"p(a{i})" for i in range(10)], "p(X)", ("p", 1)
        )
        timeline = simulate_streaming_search(
            fs2, records, ("p", 1), drive=FUJITSU_M2351A
        )
        assert timeline.total_transfer_ns > timeline.total_match_ns
        assert timeline.match_bound_clauses == 0
        # Double-buffered total collapses to (almost) pure transfer time.
        assert timeline.double_buffered_ns < timeline.single_buffered_ns
        slack = timeline.double_buffered_ns - timeline.total_transfer_ns
        assert slack == timeline.clauses[-1].match_ns

    def test_empty_stream(self):
        fs2, _ = prepared(["p(a)"], "p(a)", ("p", 1))
        timeline = simulate_streaming_search(fs2, [], ("p", 1))
        assert timeline.double_buffered_ns == 0
        assert timeline.overlap_speedup == 1.0

    def test_slower_disk_widens_margin(self):
        fs2, records = prepared(
            [f"p(a{i})" for i in range(5)], "p(X)", ("p", 1)
        )
        fast = simulate_streaming_search(fs2, records, ("p", 1), FUJITSU_M2351A)
        fs2.set_query(read_term("p(X)"))
        slow = simulate_streaming_search(fs2, records, ("p", 1), MICROPOLIS_1325)
        assert slow.total_transfer_ns > fast.total_transfer_ns
        assert slow.total_match_ns == fast.total_match_ns
